package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/faultinject"
	"lvf2/internal/libbuild"
	"lvf2/internal/liberty"
)

// fastRetry keeps retry/backoff instant in tests.
var fastRetry = checkpoint.RetryPolicy{
	MaxAttempts: 2,
	Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
}

// testBuild is the same 32-unit build the libbuild suite uses: two cell
// types, two arcs each, a 2×2 subsampled grid.
func testBuild(j *checkpoint.Journal) libbuild.Config {
	inv, _ := cells.CellByName("INV")
	nand, _ := cells.CellByName("NAND2")
	return libbuild.Config{
		Types:   []cells.CellType{inv, nand},
		ArcsPer: 2,
		Char: cells.CharConfig{
			Samples:    400,
			Seed:       99,
			GridStride: 4,
			Workers:    2,
		},
		LVF2:    true,
		Retry:   fastRetry,
		Journal: j,
	}
}

// smallBuild is a single-arc build (8 units) for protocol-level tests.
func smallBuild(j *checkpoint.Journal) libbuild.Config {
	inv, _ := cells.CellByName("INV")
	return libbuild.Config{
		Types:   []cells.CellType{inv},
		ArcsPer: 1,
		Char:    cells.CharConfig{Samples: 200, Seed: 7, GridStride: 4},
		LVF2:    true,
		Retry:   fastRetry,
		Journal: j,
	}
}

func openJournal(t *testing.T, fsys checkpoint.FS, dir string, fp checkpoint.Fingerprint) *checkpoint.Journal {
	t.Helper()
	j, err := checkpoint.Open(fsys, dir, fp, checkpoint.Options{FlushEvery: 4})
	if err != nil {
		t.Fatalf("Open journal %s: %v", dir, err)
	}
	return j
}

// singleProcessLib builds the golden .lib bytes in one process.
func singleProcessLib(t *testing.T, cfg libbuild.Config) []byte {
	t.Helper()
	lib, _, err := libbuild.Build(context.Background(), cfg)
	if err != nil {
		t.Fatalf("single-process Build: %v", err)
	}
	var buf bytes.Buffer
	if err := liberty.WriteLibrary(&buf, lib); err != nil {
		t.Fatalf("WriteLibrary: %v", err)
	}
	return buf.Bytes()
}

// assembleLib emits the library from a journal that already holds every
// unit: a pure restore pass.
func assembleLib(t *testing.T, cfg libbuild.Config) ([]byte, libbuild.Stats) {
	t.Helper()
	lib, stats, err := libbuild.Build(context.Background(), cfg)
	if err != nil {
		t.Fatalf("assembly Build: %v", err)
	}
	var buf bytes.Buffer
	if err := liberty.WriteLibrary(&buf, lib); err != nil {
		t.Fatalf("WriteLibrary: %v", err)
	}
	return buf.Bytes(), stats
}

// assertOneTerminalPerKey replays the journal's full append history and
// fails if any unit was journaled terminal more than once — the
// no-double-journal invariant of idempotent completion.
func assertOneTerminalPerKey(t *testing.T, fsys checkpoint.FS, dir string, fp checkpoint.Fingerprint) {
	t.Helper()
	recs, err := checkpoint.ReplayRecords(fsys, dir, fp)
	if err != nil {
		t.Fatalf("ReplayRecords: %v", err)
	}
	terminal := map[checkpoint.Key]int{}
	for _, rec := range recs {
		if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
			terminal[rec.Key]++
		}
	}
	for k, n := range terminal {
		if n > 1 {
			t.Errorf("unit %s journaled terminal %d times", k, n)
		}
	}
}

// TestDistributedBuildMatchesSingleProcess is the tentpole guarantee: a
// coordinator and three workers over real HTTP produce a journal whose
// assembled library is bit-identical to a single-process build.
func TestDistributedBuildMatchesSingleProcess(t *testing.T) {
	goldenFS := faultinject.NewMemFS()
	goldenCfg := testBuild(openJournal(t, goldenFS, "golden", testBuild(nil).Fingerprint()))
	golden := singleProcessLib(t, goldenCfg)

	fsys := faultinject.NewMemFS()
	j := openJournal(t, fsys, "ckpt", testBuild(nil).Fingerprint())
	cfg := testBuild(j)
	c, err := NewCoordinator(CoordinatorConfig{
		Build:    cfg,
		LeaseTTL: 5 * time.Second,
		PollWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(ctx, WorkerConfig{ID: fmt.Sprintf("w%d", i), URL: srv.URL})
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if !c.Done() {
		t.Fatal("coordinator not done after all workers exited")
	}

	// Assemble from the journal: everything must restore, nothing refit.
	libBytes, stats := assembleLib(t, cfg)
	if stats.Restored != stats.Units || stats.Units != 32 {
		t.Fatalf("assembly restored %d/%d units, want 32/32", stats.Restored, stats.Units)
	}
	if !bytes.Equal(libBytes, golden) {
		t.Fatal("distributed library differs from single-process build")
	}
	j.Close()
	assertOneTerminalPerKey(t, fsys, "ckpt", cfg.Fingerprint())
}

// newTestCoordinator wires a coordinator over a fake clock for
// deterministic lease-expiry tests.
func newTestCoordinator(t *testing.T, cfg libbuild.Config, clk *faultinject.Clock, deathBudget int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		Build:       cfg,
		LeaseTTL:    10 * time.Second,
		DeathBudget: deathBudget,
		Now:         clk.Now,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func TestCompleteIsIdempotent(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 2)

	lr := c.Lease(LeaseRequest{Worker: "w1"})
	if lr.Lease == nil || len(lr.Lease.Keys) != 2 {
		t.Fatalf("first lease = %+v, want a 2-unit pair", lr)
	}
	req := CompleteRequest{
		Worker: "w1", Fingerprint: cfg.Fingerprint().Hash(), LeaseID: lr.Lease.ID,
		Key: lr.Lease.Keys[0], OK: true, Payload: []byte("unit-result"),
	}
	first, err := c.Complete(req)
	if err != nil || !first.Accepted || first.Duplicate {
		t.Fatalf("first Complete = %+v, %v", first, err)
	}
	// The retried submission (lost response) and a stale resubmission
	// from another worker both dedup against the journal.
	for _, worker := range []string{"w1", "w2"} {
		req.Worker = worker
		dup, err := c.Complete(req)
		if err != nil || !dup.Accepted || !dup.Duplicate {
			t.Fatalf("duplicate Complete from %s = %+v, %v", worker, dup, err)
		}
	}
	cfg.Journal.Close()
	recs, err := checkpoint.ReplayRecords(fsys, "ckpt", cfg.Fingerprint())
	if err != nil {
		t.Fatalf("ReplayRecords: %v", err)
	}
	n := 0
	for _, rec := range recs {
		if rec.Key == lr.Lease.Keys[0].ToKey() {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("unit journaled %d times after 3 submissions, want 1", n)
	}
}

func TestLeaseExpiryReleasesUnits(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 99)

	l1 := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	if l1 == nil {
		t.Fatal("no first lease")
	}
	// While the lease is live, the same units are not re-leased: the next
	// request gets the next pair.
	l2 := c.Lease(LeaseRequest{Worker: "w2"}).Lease
	if l2 == nil || l2.Keys[0] == l1.Keys[0] {
		t.Fatalf("second lease reissued leased units: %+v", l2)
	}

	// w1 goes dark: past the TTL its units are re-leasable, its lease ID
	// is dead, and the expiry is visible in the heartbeat channel.
	clk.Advance(11 * time.Second)
	c.Tick()
	if hb := c.Heartbeat(HeartbeatRequest{Worker: "w1", LeaseID: l1.ID}); hb.OK {
		t.Fatal("heartbeat renewed an expired lease")
	}
	l3 := c.Lease(LeaseRequest{Worker: "w3"}).Lease
	if l3 == nil || l3.Keys[0] != l1.Keys[0] {
		t.Fatalf("expired units not re-leased: got %+v, want keys of lease 1", l3)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 99)

	l := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	for i := 0; i < 5; i++ {
		clk.Advance(6 * time.Second) // past TTL/2 each step, never past TTL since renewal
		if hb := c.Heartbeat(HeartbeatRequest{Worker: "w1", LeaseID: l.ID}); !hb.OK {
			t.Fatalf("heartbeat %d rejected for a live, renewed lease", i)
		}
	}
	// A heartbeat from the wrong worker must not renew someone else's
	// lease.
	if hb := c.Heartbeat(HeartbeatRequest{Worker: "thief", LeaseID: l.ID}); hb.OK {
		t.Fatal("heartbeat accepted from a worker that does not own the lease")
	}
}

func TestDeathBudgetRoutesUnitToSalvage(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 2)

	// The same pair kills two workers in a row.
	var firstKeys []WireKey
	for death := 1; death <= 2; death++ {
		l := c.Lease(LeaseRequest{Worker: fmt.Sprintf("victim%d", death)}).Lease
		if l == nil {
			t.Fatalf("death %d: no lease", death)
		}
		if firstKeys == nil {
			firstKeys = l.Keys
		} else if l.Keys[0] != firstKeys[0] {
			t.Fatalf("death %d re-leased different units: %+v", death, l.Keys)
		}
		clk.Advance(11 * time.Second)
		c.Tick()
	}

	// The poison units now come back one at a time as salvage leases.
	sl := c.Lease(LeaseRequest{Worker: "salvager"}).Lease
	if sl == nil || !sl.Salvage || len(sl.Keys) != 1 {
		t.Fatalf("after %d worker deaths, lease = %+v, want single-unit salvage", 2, sl)
	}
	if !strings.Contains(sl.LastErr, "outlived 2 workers") {
		t.Fatalf("salvage LastErr = %q, want the death account", sl.LastErr)
	}
	resp, err := c.Complete(CompleteRequest{
		Worker: "salvager", Fingerprint: cfg.Fingerprint().Hash(), LeaseID: sl.ID,
		Key: sl.Keys[0], OK: true, Payload: []byte("degraded"), Rung: "gaussian",
	})
	if err != nil || !resp.Accepted {
		t.Fatalf("salvage Complete = %+v, %v", resp, err)
	}
	rec, ok := cfg.Journal.Lookup(sl.Keys[0].ToKey())
	if !ok || rec.Status != checkpoint.StatusQuarantined || rec.Rung != "gaussian" {
		t.Fatalf("journal record = %+v ok=%v, want quarantined with rung", rec, ok)
	}
	if !strings.Contains(rec.Note, "quarantined after") || !strings.Contains(rec.Note, "outlived 2 workers") {
		t.Fatalf("quarantine note = %q, want attempts + cause", rec.Note)
	}
}

func TestReportedFailuresSpendRetryBudgetThenSalvage(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 99)

	l := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	k := l.Keys[0]
	fail := CompleteRequest{Worker: "w1", Fingerprint: cfg.Fingerprint().Hash(),
		LeaseID: l.ID, Key: k, OK: false, Err: "synthetic fit explosion"}
	if _, err := c.Complete(fail); err != nil {
		t.Fatalf("first failure: %v", err)
	}
	rec, ok := cfg.Journal.Lookup(k.ToKey())
	if !ok || rec.Status != checkpoint.StatusFailed || rec.Attempts != 1 {
		t.Fatalf("after first failure, record = %+v ok=%v", rec, ok)
	}

	// The unit backs off before its retry lease; the sibling remains
	// leased to w1, so the next grant (after backoff) is the failed unit.
	clk.Advance(time.Hour)
	c.Tick() // w1's lease expires; sibling re-pends too
	l2 := c.Lease(LeaseRequest{Worker: "w2"}).Lease
	if l2 == nil || l2.Salvage {
		t.Fatalf("second lease = %+v, want a normal retry lease", l2)
	}
	if _, err := c.Complete(CompleteRequest{Worker: "w2", Fingerprint: cfg.Fingerprint().Hash(),
		LeaseID: l2.ID, Key: k, OK: false, Err: "synthetic fit explosion"}); err != nil {
		t.Fatalf("second failure: %v", err)
	}

	// MaxAttempts=2 is spent: the unit must come back as salvage with the
	// reported cause.
	clk.Advance(time.Hour)
	c.Tick()
	var sl *Lease
	for i := 0; i < 8; i++ {
		got := c.Lease(LeaseRequest{Worker: "w3"}).Lease
		if got == nil {
			break
		}
		if got.Salvage && got.Keys[0] == k {
			sl = got
			break
		}
	}
	if sl == nil {
		t.Fatal("exhausted unit never offered as a salvage lease")
	}
	if sl.LastErr != "synthetic fit explosion" {
		t.Fatalf("salvage LastErr = %q, want the reported failure", sl.LastErr)
	}
	resp, err := c.Complete(CompleteRequest{Worker: "w3", Fingerprint: cfg.Fingerprint().Hash(),
		LeaseID: sl.ID, Key: k, OK: true, Payload: []byte("degraded"), Rung: "floored-gaussian"})
	if err != nil || !resp.Accepted {
		t.Fatalf("salvage Complete = %+v, %v", resp, err)
	}
	rec, _ = cfg.Journal.Lookup(k.ToKey())
	want := "quarantined after 2 attempts: synthetic fit explosion"
	if rec.Status != checkpoint.StatusQuarantined || rec.Note != want {
		t.Fatalf("quarantine record = %+v, want note %q", rec, want)
	}
}

// TestCoordinatorRestartRecoversFromJournal kills the coordinator (all
// soft state lost) and restarts it against the same journal: terminal
// units stay terminal, a half-spent retry budget survives, and the
// remaining work drains normally.
func TestCoordinatorRestartRecoversFromJournal(t *testing.T) {
	fsys := faultinject.NewMemFS()
	fp := smallBuild(nil).Fingerprint()
	j := openJournal(t, fsys, "ckpt", fp)
	cfg := smallBuild(j)
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 99)

	// Complete one pair, fail one unit once, leave a lease dangling.
	l1 := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	for _, k := range l1.Keys {
		if _, err := c.Complete(CompleteRequest{Worker: "w1", Fingerprint: fp.Hash(),
			LeaseID: l1.ID, Key: k, OK: true, Payload: []byte("done-" + k.Kind)}); err != nil {
			t.Fatal(err)
		}
	}
	l2 := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	if _, err := c.Complete(CompleteRequest{Worker: "w1", Fingerprint: fp.Hash(),
		LeaseID: l2.ID, Key: l2.Keys[0], OK: false, Err: "transient"}); err != nil {
		t.Fatal(err)
	}
	_ = c.Lease(LeaseRequest{Worker: "w1"}) // dangling lease at crash time

	// Crash: flush + reopen the journal, new coordinator, nothing else
	// carried over.
	j.Close()
	j2 := openJournal(t, fsys, "ckpt", fp)
	cfg2 := smallBuild(j2)
	clk2 := faultinject.NewClock(time.Time{})
	c2 := newTestCoordinator(t, cfg2, clk2, 99)

	// 8 units, 2 terminal: 6 pending, and the failed unit still owes its
	// journaled attempt.
	clk2.Advance(time.Hour) // clear any notBefore backoff
	seen := map[checkpoint.Key]bool{}
	for {
		lr := c2.Lease(LeaseRequest{Worker: "w2"})
		if lr.Done {
			break
		}
		if lr.Lease == nil {
			t.Fatalf("restarted coordinator stalled with %d units completed", len(seen))
		}
		for _, wk := range lr.Lease.Keys {
			k := wk.ToKey()
			if seen[k] {
				t.Fatalf("unit %s leased twice after completion", k)
			}
			seen[k] = true
			if _, err := c2.Complete(CompleteRequest{Worker: "w2", Fingerprint: fp.Hash(),
				LeaseID: lr.Lease.ID, Key: wk, OK: true, Payload: []byte("done")}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("restarted coordinator leased %d units, want the 6 non-terminal ones", len(seen))
	}
	for _, k := range l1.Keys {
		if seen[k.ToKey()] {
			t.Fatalf("terminal unit %s re-leased after restart", k.ToKey())
		}
	}
	if !c2.Done() {
		t.Fatal("restarted coordinator not done")
	}
	j2.Close()
	assertOneTerminalPerKey(t, fsys, "ckpt", fp)
}

func TestFingerprintMismatchRejectedWith409(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 2)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	l := c.Lease(LeaseRequest{Worker: "w1"}).Lease
	w := &worker{cfg: WorkerConfig{ID: "w1", URL: srv.URL}.withDefaults()}
	w.fp = cfg.Fingerprint().Hash() ^ 0xdead // a different build

	var resp CompleteResponse
	err := w.post(context.Background(), PathComplete, CompleteRequest{
		Worker: "w1", Fingerprint: w.fp, LeaseID: l.ID, Key: l.Keys[0],
		OK: true, Payload: []byte("alien bits"),
	}, &resp)
	if !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("mismatched submission error = %v, want ErrSpecMismatch (from a 409)", err)
	}
	if _, ok := cfg.Journal.Lookup(l.Keys[0].ToKey()); ok {
		t.Fatal("mismatched submission reached the journal")
	}
}

// blockingExecutor wraps the real executor but parks the first Execute
// of a chosen unit until its context dies.
type blockingExecutor struct {
	inner   UnitExecutor
	block   checkpoint.Key
	started chan struct{}
	once    sync.Once
}

func (b *blockingExecutor) Execute(ctx context.Context, k checkpoint.Key) ([]byte, error) {
	if k == b.block {
		blocked := false
		b.once.Do(func() { close(b.started); blocked = true })
		if blocked {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	return b.inner.Execute(ctx, k)
}

func (b *blockingExecutor) Salvage(ctx context.Context, k checkpoint.Key) ([]byte, string, error) {
	return b.inner.Salvage(ctx, k)
}

// TestWorkerAbandonsRevokedLease is the distributed half of the
// cancellation-races-lease-expiry satellite: a worker wedged mid-unit
// whose lease disappears (the unit finished elsewhere) must abandon the
// unit without submitting anything — the unit is journaled exactly
// once, by the other party, and never as Failed.
func TestWorkerAbandonsRevokedLease(t *testing.T) {
	fsys := faultinject.NewMemFS()
	fp := smallBuild(nil).Fingerprint()
	j := openJournal(t, fsys, "ckpt", fp)
	cfg := smallBuild(j)
	c, err := NewCoordinator(CoordinatorConfig{
		Build:    cfg,
		LeaseTTL: 300 * time.Millisecond, // heartbeat every 100ms
		PollWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	refs, err := libbuild.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	newExec := func(bc libbuild.Config) (UnitExecutor, error) {
		inner, err := libbuild.NewExecutor(bc)
		if err != nil {
			return nil, err
		}
		return &blockingExecutor{inner: inner, block: refs[0].Key, started: started}, nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerConfig{ID: "wedged", URL: srv.URL, NewExecutor: newExec})
	}()

	// The worker is now parked inside refs[0]. Finish its whole lease
	// from the side (the re-lease twin finished first); the lease
	// evaporates and the next heartbeat tells the worker to let go.
	<-started
	realExec, err := libbuild.NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs[:2] {
		payload, err := realExec.Execute(ctx, ref.Key)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Complete(CompleteRequest{Worker: "twin", Fingerprint: fp.Hash(),
			Key: FromKey(ref.Key), OK: true, Payload: payload})
		if err != nil || !resp.Accepted {
			t.Fatalf("twin Complete(%s) = %+v, %v", ref.Key, resp, err)
		}
	}

	// The worker must shake off the dead lease and drain the rest.
	if err := <-workerErr; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if !c.Done() {
		t.Fatal("build not done")
	}
	j.Close()
	recs, err := checkpoint.ReplayRecords(fsys, "ckpt", fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Key == refs[0].Key && rec.Status == checkpoint.StatusFailed {
			t.Fatalf("abandoned unit journaled as Failed: %+v", rec)
		}
	}
	assertOneTerminalPerKey(t, fsys, "ckpt", fp)
}

// TestReadyzAndMetrics sanity-checks the coordinator's probe surface.
func TestReadyzAndMetrics(t *testing.T) {
	fsys := faultinject.NewMemFS()
	cfg := smallBuild(openJournal(t, fsys, "ckpt", smallBuild(nil).Fingerprint()))
	clk := faultinject.NewClock(time.Time{})
	c := newTestCoordinator(t, cfg, clk, 2)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "8 units pending") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "lvf2_dist_units_pending") {
		t.Fatalf("/metrics = %d, missing dist series: %.200s", code, body)
	}
}
