package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lvf2/internal/checkpoint"
	"lvf2/internal/libbuild"
	"lvf2/internal/obs"
)

// ErrSpecMismatch marks a submission stamped with a different config
// fingerprint: the worker characterised under a different seed, grid or
// library, so its bytes must never reach the journal.
var ErrSpecMismatch = errors.New("dist: config fingerprint mismatch")

// errUnknownUnit marks a submission for a key outside the build plan.
var errUnknownUnit = errors.New("dist: unit is not in the build plan")

// CoordinatorConfig tunes a coordinator.
type CoordinatorConfig struct {
	// Build is the library build to distribute. Its Journal is required:
	// the journal IS the coordinator's durable state — leases, worker
	// registrations and death counts are soft and rebuilt from it after
	// a crash.
	Build libbuild.Config
	// LeaseTTL bounds how long a silent worker keeps a lease
	// (default 10s). A lease not renewed within the TTL is reclaimed and
	// its units re-leased.
	LeaseTTL time.Duration
	// Heartbeat is the renewal interval advertised to workers
	// (default LeaseTTL/3).
	Heartbeat time.Duration
	// PollWait is the wait hint returned when no unit is currently
	// leasable (default 500ms).
	PollWait time.Duration
	// DeathBudget is how many worker deaths (lease expiries) one unit
	// may cause before it is treated as poison and salvaged
	// (default 2). Deaths are counted per coordinator incarnation —
	// unlike the retry budget, they are not journaled, because a lease
	// expiry blames the environment as much as the unit.
	DeathBudget int
	// Now is the clock seam (default time.Now). Tests drive lease expiry
	// with a fake clock and explicit Tick calls.
	Now func() time.Time
	// Log receives coordinator events (default: discarded).
	Log io.Writer
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.PollWait <= 0 {
		c.PollWait = 500 * time.Millisecond
	}
	if c.DeathBudget <= 0 {
		c.DeathBudget = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// unitState is one plan unit's scheduling state. terminal mirrors the
// journal; everything else is soft.
type unitState struct {
	ref       libbuild.UnitRef
	pair      int // index of the (Delay, Transition) sibling group
	terminal  bool
	attempts  int // journal-persistent retry budget consumed
	deaths    int // workers this unit's lease died under (this incarnation)
	salvage   bool
	lastErr   string
	leaseID   uint64 // 0 = not leased
	notBefore time.Time
}

// activeLease is one outstanding grant.
type activeLease struct {
	id      uint64
	worker  string
	keys    []checkpoint.Key
	expiry  time.Time
	salvage bool
}

// Coordinator leases the units of one journaled build to workers and
// journals their results. All methods are safe for concurrent use.
type Coordinator struct {
	cfg     CoordinatorConfig
	fp      checkpoint.Fingerprint
	retry   checkpoint.RetryPolicy
	maxAtt  int
	metrics *obs.HTTPMetrics

	mu        sync.Mutex
	units     []*unitState
	byKey     map[checkpoint.Key]*unitState
	leases    map[uint64]*activeLease
	nextLease uint64
	remaining int
	workers   map[string]bool
	done      chan struct{}
}

// NewCoordinator plans the build and restores scheduling state from the
// journal: Done/Quarantined units are terminal, Failed records carry
// their consumed attempts (a unit whose budget is already spent goes
// straight to the salvage queue). Nothing else survives a restart —
// leases and death counts start empty, which is safe: stale leases on
// dead workers simply never submit, and live workers rejoin.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Build.Journal == nil {
		return nil, errors.New("dist: coordinator requires a journal")
	}
	refs, err := libbuild.Plan(cfg.Build)
	if err != nil {
		return nil, err
	}
	retry := cfg.Build.Retry
	maxAtt := 3
	if retry.MaxAttempts > 0 {
		maxAtt = retry.MaxAttempts
	}
	c := &Coordinator{
		cfg:     cfg,
		fp:      cfg.Build.Fingerprint(),
		retry:   retry,
		maxAtt:  maxAtt,
		metrics: obs.NewHTTPMetrics(obs.Default(), "lvf2_dist"),
		byKey:   make(map[checkpoint.Key]*unitState, len(refs)),
		leases:  make(map[uint64]*activeLease),
		workers: make(map[string]bool),
		done:    make(chan struct{}),
	}
	for i, ref := range refs {
		u := &unitState{ref: ref, pair: i / 2}
		if rec, ok := cfg.Build.Journal.Lookup(ref.Key); ok {
			switch rec.Status {
			case checkpoint.StatusDone, checkpoint.StatusQuarantined:
				u.terminal = true
			case checkpoint.StatusFailed:
				u.attempts = rec.Attempts
				if u.attempts >= maxAtt {
					u.salvage = true
					u.lastErr = rec.Note
				}
			}
		}
		c.units = append(c.units, u)
		c.byKey[ref.Key] = u
		if !u.terminal {
			c.remaining++
		}
	}
	unitsPending.Set(int64(c.remaining))
	cfg.Build.Journal.SetResumeSkipRatio(len(refs)-c.remaining, len(refs))
	if c.remaining == 0 {
		close(c.done)
	}
	fmt.Fprintf(cfg.Log, "dist: coordinator: %d units planned, %d already terminal\n",
		len(refs), len(refs)-c.remaining)
	return c, nil
}

// Fingerprint is the build's configuration fingerprint.
func (c *Coordinator) Fingerprint() checkpoint.Fingerprint { return c.fp }

// Done reports whether every unit is journaled terminal.
func (c *Coordinator) Done() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the build completes or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Tick reclaims expired leases as of the coordinator clock. Handlers
// run it before every lease and completion decision; fake-clock tests
// call it explicitly after advancing time.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.cfg.Now())
}

// sweepLocked reclaims every lease whose TTL lapsed: each of its
// still-pending units goes back to the queue with one more death on its
// account, and a unit that has now outlived DeathBudget workers is
// routed to the salvage ladder instead of being re-run as-is.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expiry) {
			continue
		}
		delete(c.leases, id)
		leasesExpired.Inc()
		workerDeaths.Inc()
		delete(c.workers, l.worker)
		workersGauge.Set(int64(len(c.workers)))
		for _, k := range l.keys {
			u := c.byKey[k]
			if u == nil || u.terminal || u.leaseID != id {
				continue
			}
			u.leaseID = 0
			u.deaths++
			if u.deaths >= c.cfg.DeathBudget && !u.salvage {
				u.salvage = true
				u.lastErr = fmt.Sprintf("unit outlived %d workers (last lease %d on %s expired)",
					u.deaths, id, l.worker)
				fmt.Fprintf(c.cfg.Log, "dist: poison unit %s: %s\n", k, u.lastErr)
			}
		}
		fmt.Fprintf(c.cfg.Log, "dist: lease %d on worker %s expired and was reclaimed\n", id, l.worker)
	}
}

// Join registers a worker and hands it the build.
func (c *Coordinator) Join(req JoinRequest) JoinResponse {
	c.mu.Lock()
	if !c.workers[req.Worker] {
		c.workers[req.Worker] = true
		workersGauge.Set(int64(len(c.workers)))
	}
	c.mu.Unlock()
	fmt.Fprintf(c.cfg.Log, "dist: worker %s joined\n", req.Worker)
	return JoinResponse{
		Spec:        SpecFromConfig(c.cfg.Build),
		Fingerprint: c.fp.Hash(),
		LeaseTTLMs:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMs: c.cfg.Heartbeat.Milliseconds(),
	}
}

// Lease grants the next available work. Normal units are granted as the
// (Delay, Transition) pair of one grid point so the worker shares their
// Monte-Carlo pass; salvage units are granted alone.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepLocked(now)
	if c.remaining == 0 {
		return LeaseResponse{Done: true}
	}
	if !c.workers[req.Worker] {
		c.workers[req.Worker] = true
		workersGauge.Set(int64(len(c.workers)))
	}

	leasable := func(u *unitState) bool {
		return !u.terminal && u.leaseID == 0 && !now.Before(u.notBefore)
	}
	for i, u := range c.units {
		if !leasable(u) {
			continue
		}
		c.nextLease++
		l := &activeLease{id: c.nextLease, worker: req.Worker, expiry: now.Add(c.cfg.LeaseTTL), salvage: u.salvage}
		grant := []*unitState{u}
		if !u.salvage {
			// Sweep the rest of the pair in plan order (the sibling is
			// adjacent, but may already be terminal or backing off).
			for j := i + 1; j < len(c.units) && c.units[j].pair == u.pair; j++ {
				if s := c.units[j]; leasable(s) && !s.salvage {
					grant = append(grant, s)
				}
			}
		}
		wire := make([]WireKey, len(grant))
		for gi, g := range grant {
			g.leaseID = l.id
			l.keys = append(l.keys, g.ref.Key)
			wire[gi] = FromKey(g.ref.Key)
		}
		c.leases[l.id] = l
		leasesGranted.Inc()
		fmt.Fprintf(c.cfg.Log, "dist: lease %d -> worker %s: %d unit(s), salvage=%v\n",
			l.id, req.Worker, len(grant), u.salvage)
		return LeaseResponse{Lease: &Lease{
			ID: l.id, Keys: wire, Salvage: u.salvage, LastErr: u.lastErr,
			TTLMs: c.cfg.LeaseTTL.Milliseconds(),
		}}
	}
	return LeaseResponse{WaitMs: c.cfg.PollWait.Milliseconds()}
}

// Heartbeat renews a lease. OK=false tells the worker its lease is gone
// (expired, possibly re-leased) and the work in flight must be dropped.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepLocked(now)
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		return HeartbeatResponse{OK: false}
	}
	l.expiry = now.Add(c.cfg.LeaseTTL)
	heartbeats.Inc()
	return HeartbeatResponse{OK: true}
}

// Complete accepts one unit result idempotently. The journal is the
// dedup authority: a unit already terminal acknowledges as a duplicate
// and writes nothing, so retried submissions (the response of the first
// try was lost) and stale submissions (the unit was re-leased and
// finished elsewhere — harmless, payloads are deterministic) can never
// journal a unit twice. Submissions under the wrong fingerprint are
// rejected with ErrSpecMismatch before touching anything.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Fingerprint != c.fp.Hash() {
		resultsTotal.Inc("fingerprint_mismatch")
		return CompleteResponse{}, fmt.Errorf("%w: got %x, build is %x", ErrSpecMismatch, req.Fingerprint, c.fp.Hash())
	}
	k := req.Key.ToKey()
	u, ok := c.byKey[k]
	if !ok {
		resultsTotal.Inc("unknown_unit")
		return CompleteResponse{}, fmt.Errorf("%w: %s", errUnknownUnit, k)
	}
	now := c.cfg.Now()
	c.sweepLocked(now)
	if u.terminal {
		resultsTotal.Inc("duplicate")
		return CompleteResponse{Accepted: true, Duplicate: true, Done: c.remaining == 0}, nil
	}
	c.releaseLocked(u)

	j := c.cfg.Build.Journal
	switch {
	case req.OK && req.Rung == "":
		if err := j.Done(k, u.attempts+1, req.Payload); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: journal %s: %v\n", k, err)
		}
		resultsTotal.Inc("done")
		c.markTerminalLocked(u)
	case req.OK:
		// Salvage emission: quarantine with the same note format the
		// single-process runner writes, so the emitted library carries
		// identical provenance either way.
		lastErr := u.lastErr
		if lastErr == "" {
			lastErr = req.Err
		}
		note := fmt.Sprintf("quarantined after %d attempts: %s", u.attempts, lastErr)
		if err := j.Quarantined(k, u.attempts, req.Rung, note, req.Payload); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: journal %s: %v\n", k, err)
		}
		resultsTotal.Inc("quarantined")
		c.markTerminalLocked(u)
	default:
		// Worker-observed unit fault: spend one attempt of the
		// journal-persistent retry budget and back the unit off.
		u.attempts++
		if err := j.Failed(k, u.attempts, req.Err); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: journal %s: %v\n", k, err)
		}
		resultsTotal.Inc("failed")
		if u.attempts >= c.maxAtt {
			u.salvage = true
			u.lastErr = req.Err
		} else {
			u.notBefore = now.Add(c.retry.Delay(k, u.attempts))
		}
	}
	return CompleteResponse{Accepted: true, Done: c.remaining == 0}, nil
}

// releaseLocked detaches a unit from its lease (if any), dropping the
// lease once its last unit is gone.
func (c *Coordinator) releaseLocked(u *unitState) {
	if u.leaseID == 0 {
		return
	}
	l := c.leases[u.leaseID]
	u.leaseID = 0
	if l == nil {
		return
	}
	live := 0
	for _, k := range l.keys {
		if s := c.byKey[k]; s != nil && s.leaseID == l.id {
			live++
		}
	}
	if live == 0 {
		delete(c.leases, l.id)
	}
}

func (c *Coordinator) markTerminalLocked(u *unitState) {
	u.terminal = true
	c.remaining--
	unitsPending.Set(int64(c.remaining))
	if c.remaining == 0 {
		// Seal the tail so the finished build is durable before anyone
		// observes Done.
		if err := c.cfg.Build.Journal.Flush(); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: final flush: %v\n", err)
		}
		close(c.done)
	}
}

// Handler assembles the coordinator's HTTP surface: the four protocol
// endpoints (instrumented, panic-recovered), /readyz, /healthz and
// /metrics.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	api := func(route string, h http.HandlerFunc) {
		mux.Handle(route, c.metrics.Wrap(route, obs.Recover(c.metrics.Panics, h)))
	}
	api(PathJoin, func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if !decode(w, r, &req) {
			return
		}
		writeJSON(w, c.Join(req))
	})
	api(PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		writeJSON(w, c.Lease(req))
	})
	api(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		writeJSON(w, c.Heartbeat(req))
	})
	api(PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.Complete(req)
		switch {
		case errors.Is(err, ErrSpecMismatch):
			http.Error(w, err.Error(), http.StatusConflict)
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			writeJSON(w, resp)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// The coordinator is ready the moment it is constructed (the journal
	// replayed); /readyz distinguishes "leasing" from "drained".
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.mu.Lock()
		remaining := c.remaining
		c.mu.Unlock()
		if remaining == 0 {
			fmt.Fprintln(w, "ready (build complete)")
			return
		}
		fmt.Fprintf(w, "ready (%d units pending)\n", remaining)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
