package dist

import "lvf2/internal/obs"

// Distributed-characterisation metrics live in the process-wide default
// registry, exposed by the coordinator's /metrics endpoint: lease churn
// (grants, expiries, worker deaths), heartbeat traffic, result outcomes
// and the live pending/worker gauges an operator watches to tell a
// draining fleet from a wedged one.
var (
	leasesGranted = obs.NewCounter(obs.Default(),
		"lvf2_dist_leases_granted_total", "work-unit leases granted to workers")
	leasesExpired = obs.NewCounter(obs.Default(),
		"lvf2_dist_leases_expired_total", "leases reclaimed after their TTL lapsed without renewal")
	workerDeaths = obs.NewCounter(obs.Default(),
		"lvf2_dist_worker_deaths_total", "distinct lease expiries attributed to a dead or wedged worker")
	heartbeats = obs.NewCounter(obs.Default(),
		"lvf2_dist_heartbeats_total", "lease heartbeat renewals accepted")
	resultsTotal = obs.NewCounterVec(obs.Default(),
		"lvf2_dist_results_total", "result submissions by outcome", "status")
	unitsPending = obs.NewGauge(obs.Default(),
		"lvf2_dist_units_pending", "work units not yet journaled terminal")
	workersGauge = obs.NewGauge(obs.Default(),
		"lvf2_dist_workers", "workers that have joined and not been declared dead")
)
