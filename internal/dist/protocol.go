// Package dist distributes a journaled library build across processes:
// a coordinator leases checkpoint work units to workers over plain
// HTTP/JSON and journals their results, so N machines characterise one
// library with the same durability, retry and quarantine semantics —
// and the same bits — as a single resumable process.
//
// The protocol is deliberately small:
//
//	POST /v1/dist/join       worker announces itself, learns the build
//	POST /v1/dist/lease      worker asks for work (a pair lease or a
//	                         salvage lease), or learns to wait / stop
//	POST /v1/dist/heartbeat  worker renews a held lease
//	POST /v1/dist/complete   worker submits one unit result
//
// Everything that matters for correctness lives in the journal, not the
// protocol: leases are soft state (a crashed coordinator restarts from
// the journal alone and re-leases whatever is not terminal), results
// are idempotent (keyed by unit key + config fingerprint, deduplicated
// against the journal), and unit payloads are deterministic, so it
// never matters which worker's submission wins.
package dist

import (
	"fmt"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/libbuild"
)

// Protocol endpoint paths.
const (
	PathJoin      = "/v1/dist/join"
	PathLease     = "/v1/dist/lease"
	PathHeartbeat = "/v1/dist/heartbeat"
	PathComplete  = "/v1/dist/complete"
)

// WireKey is checkpoint.Key in JSON clothing.
type WireKey struct {
	Cell string `json:"cell"`
	Pin  string `json:"pin"`
	Arc  string `json:"arc"`
	Slew int    `json:"slew"`
	Load int    `json:"load"`
	Kind string `json:"kind"`
}

// ToKey converts back to the journal's key type.
func (w WireKey) ToKey() checkpoint.Key {
	return checkpoint.Key{Cell: w.Cell, Pin: w.Pin, Arc: w.Arc, Slew: w.Slew, Load: w.Load, Kind: w.Kind}
}

// FromKey wraps a journal key for the wire.
func FromKey(k checkpoint.Key) WireKey {
	return WireKey{Cell: k.Cell, Pin: k.Pin, Arc: k.Arc, Slew: k.Slew, Load: k.Load, Kind: k.Kind}
}

// BuildSpec is the portable description of one library build — the
// fields a worker needs to reconstruct the coordinator's
// libbuild.Config bit for bit. Cell types travel by name; both sides
// must run the same binary (or at least the same synthetic library),
// which the config fingerprint enforces on every submission.
type BuildSpec struct {
	Cells      []string `json:"cells"`
	ArcsPer    int      `json:"arcs_per"`
	Samples    int      `json:"samples"`
	Seed       uint64   `json:"seed"`
	GridStride int      `json:"grid_stride"`
	LVF2       bool     `json:"lvf2"`
	ColdStart  bool     `json:"cold_start,omitempty"`
}

// SpecFromConfig extracts the portable spec of a build configuration.
func SpecFromConfig(cfg libbuild.Config) BuildSpec {
	names := make([]string, len(cfg.Types))
	for i, t := range cfg.Types {
		names[i] = t.Name
	}
	ch := cfg.Char.WithDefaults()
	return BuildSpec{
		Cells:      names,
		ArcsPer:    cfg.ArcsPer,
		Samples:    ch.Samples,
		Seed:       ch.Seed,
		GridStride: ch.GridStride,
		LVF2:       cfg.LVF2,
		ColdStart:  cfg.ColdStart,
	}
}

// Config reconstructs the libbuild configuration the spec describes.
func (s BuildSpec) Config() (libbuild.Config, error) {
	types := make([]cells.CellType, 0, len(s.Cells))
	for _, name := range s.Cells {
		ct, ok := cells.CellByName(strings.TrimSpace(name))
		if !ok {
			return libbuild.Config{}, fmt.Errorf("dist: build spec names unknown cell %q", name)
		}
		types = append(types, ct)
	}
	return libbuild.Config{
		Types:     types,
		ArcsPer:   s.ArcsPer,
		Char:      cells.CharConfig{Samples: s.Samples, Seed: s.Seed, GridStride: s.GridStride},
		LVF2:      s.LVF2,
		ColdStart: s.ColdStart,
	}, nil
}

// JoinRequest announces a worker.
type JoinRequest struct {
	Worker string `json:"worker"`
}

// JoinResponse hands the worker everything it needs to start leasing.
type JoinResponse struct {
	Spec        BuildSpec `json:"spec"`
	Fingerprint uint64    `json:"fingerprint"` // folded config fingerprint
	LeaseTTLMs  int64     `json:"lease_ttl_ms"`
	HeartbeatMs int64     `json:"heartbeat_ms"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease grants a worker exclusive (but time-bounded) responsibility for
// a set of sibling units — the Delay and Transition of one grid point,
// so the worker shares their Monte-Carlo pass — or, when Salvage is
// set, a single poison unit to run through the quarantine ladder.
type Lease struct {
	ID      uint64    `json:"id"`
	Keys    []WireKey `json:"keys"`
	Salvage bool      `json:"salvage"`
	// LastErr is the recorded cause that exhausted a salvage unit's
	// budget; it becomes part of the quarantine note.
	LastErr string `json:"last_err,omitempty"`
	TTLMs   int64  `json:"ttl_ms"`
}

// LeaseResponse is work, a wait hint, or the end of the build.
type LeaseResponse struct {
	// Done reports every unit is journaled terminal: the worker exits.
	Done bool `json:"done"`
	// WaitMs asks the worker to poll again later (everything leasable is
	// currently leased or backing off).
	WaitMs int64  `json:"wait_ms,omitempty"`
	Lease  *Lease `json:"lease,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID uint64 `json:"lease_id"`
}

// HeartbeatResponse: OK=false means the lease is gone (expired and
// possibly re-leased) — the worker must abandon the work in flight.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest submits one unit outcome. OK with Payload is a
// finished fit (Rung set for a salvage emission); !OK with Err is a
// worker-observed unit fault, which spends one attempt of the unit's
// journal-persistent retry budget.
type CompleteRequest struct {
	Worker      string  `json:"worker"`
	Fingerprint uint64  `json:"fingerprint"`
	LeaseID     uint64  `json:"lease_id"`
	Key         WireKey `json:"key"`
	OK          bool    `json:"ok"`
	Payload     []byte  `json:"payload,omitempty"`
	Rung        string  `json:"rung,omitempty"`
	Err         string  `json:"err,omitempty"`
}

// CompleteResponse acknowledges a submission. Duplicate reports the
// unit was already terminal — the submission was accepted and
// discarded, never double-journaled. Done mirrors LeaseResponse.Done so
// a worker can exit without an extra round trip.
type CompleteResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
	Done      bool `json:"done"`
}
