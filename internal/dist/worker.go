package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lvf2/internal/checkpoint"
	"lvf2/internal/libbuild"
)

// UnitExecutor computes work-unit payloads for a worker. The production
// implementation is libbuild.Executor; tests and benchmarks wrap it to
// inject faults or a simulated compute floor.
type UnitExecutor interface {
	Execute(ctx context.Context, k checkpoint.Key) ([]byte, error)
	Salvage(ctx context.Context, k checkpoint.Key) (payload []byte, rung string, err error)
}

// WorkerConfig tunes one worker process (or goroutine).
type WorkerConfig struct {
	// ID names the worker to the coordinator (required, unique per
	// worker).
	ID string
	// URL is the coordinator base URL, e.g. "http://host:9090".
	URL string
	// Client issues the protocol requests (default http.DefaultClient).
	// The chaos suite installs a fault-injecting transport here.
	Client *http.Client
	// NewExecutor builds the unit executor for the joined build
	// (default libbuild.NewExecutor). The scaling benchmark wraps the
	// real executor with a simulated per-unit compute floor.
	NewExecutor func(libbuild.Config) (UnitExecutor, error)
	// Backoff is the base retry delay for failed protocol requests
	// (default 100ms, capped at 16x).
	Backoff time.Duration
	// Log receives worker events (default: discarded).
	Log io.Writer
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.NewExecutor == nil {
		c.NewExecutor = func(cfg libbuild.Config) (UnitExecutor, error) {
			return libbuild.NewExecutor(cfg)
		}
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// errLeaseLost signals the heartbeat loop observed the coordinator
// disowning the lease: abandon the in-flight work, lease again.
var errLeaseLost = errors.New("dist: lease lost")

// worker is the run state of one worker loop.
type worker struct {
	cfg  WorkerConfig
	exec UnitExecutor
	fp   uint64
	ttl  time.Duration
	hb   time.Duration
}

// RunWorker joins the coordinator at cfg.URL and processes leases until
// the build completes (nil), the context is cancelled (ctx.Err()), or
// the worker discovers it cannot participate — wrong fingerprint, a
// build spec it cannot reconstruct (error).
//
// Transient protocol failures (connection errors, dropped or corrupt
// responses, 5xx) are retried with exponential backoff; a submission
// whose response was lost is simply retried, which the coordinator
// deduplicates. Losing the lease (heartbeat rejected, or heartbeats
// failing for longer than the TTL) abandons the in-flight unit — the
// coordinator has re-leased it — without submitting.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	w := &worker{cfg: cfg}
	if err := w.join(ctx); err != nil {
		return err
	}
	for {
		var lr LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{Worker: cfg.ID}, &lr); err != nil {
			return err
		}
		switch {
		case lr.Done:
			fmt.Fprintf(cfg.Log, "dist: worker %s: build complete\n", cfg.ID)
			return nil
		case lr.Lease == nil:
			wait := time.Duration(lr.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if err := sleep(ctx, wait); err != nil {
				return err
			}
		default:
			done, err := w.runLease(ctx, lr.Lease)
			if done || err != nil {
				return err
			}
		}
	}
}

// join announces the worker and builds its executor, retrying until the
// coordinator answers or ctx dies.
func (w *worker) join(ctx context.Context) error {
	var jr JoinResponse
	if err := w.post(ctx, PathJoin, JoinRequest{Worker: w.cfg.ID}, &jr); err != nil {
		return err
	}
	bcfg, err := jr.Spec.Config()
	if err != nil {
		return err
	}
	if got := bcfg.Fingerprint().Hash(); got != jr.Fingerprint {
		return fmt.Errorf("%w: reconstructed spec hashes to %x, coordinator build is %x "+
			"(mismatched binaries or synthetic library)", ErrSpecMismatch, got, jr.Fingerprint)
	}
	exec, err := w.cfg.NewExecutor(bcfg)
	if err != nil {
		return err
	}
	w.exec = exec
	w.fp = jr.Fingerprint
	w.ttl = time.Duration(jr.LeaseTTLMs) * time.Millisecond
	if w.ttl <= 0 {
		w.ttl = 10 * time.Second
	}
	w.hb = time.Duration(jr.HeartbeatMs) * time.Millisecond
	if w.hb <= 0 {
		w.hb = w.ttl / 3
	}
	fmt.Fprintf(w.cfg.Log, "dist: worker %s joined (ttl=%v heartbeat=%v)\n", w.cfg.ID, w.ttl, w.hb)
	return nil
}

// runLease executes every unit of one lease under a heartbeat. It
// returns done=true when a completion response reports the build
// finished.
func (w *worker) runLease(ctx context.Context, l *Lease) (done bool, err error) {
	// The lease context dies with the lease: heartbeat rejection or a
	// renewal outage longer than the TTL cancels the in-flight unit, the
	// distributed twin of checkpoint's cancellation-is-not-a-unit-fault
	// rule — the unit is journaled as neither Done nor Failed and the
	// coordinator re-leases it.
	lctx, cancel := context.WithCancelCause(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeat(lctx, l.ID, cancel)
	}()
	defer wg.Wait()
	defer cancel(nil)

	for _, wk := range l.Keys {
		k := wk.ToKey()
		req := CompleteRequest{Worker: w.cfg.ID, Fingerprint: w.fp, LeaseID: l.ID, Key: wk}
		if l.Salvage {
			payload, rung, serr := w.exec.Salvage(lctx, k)
			if serr != nil {
				if lctx.Err() != nil {
					return false, w.leaseAborted(lctx, ctx, k)
				}
				// A salvage that cannot even run (unit off-plan) is a unit
				// fault; report it so the budget machinery sees it.
				req.OK, req.Err = false, serr.Error()
			} else {
				req.OK, req.Payload, req.Rung, req.Err = true, payload, rung, l.LastErr
			}
		} else {
			payload, xerr := w.exec.Execute(lctx, k)
			if xerr != nil {
				if lctx.Err() != nil {
					return false, w.leaseAborted(lctx, ctx, k)
				}
				req.OK, req.Err = false, xerr.Error()
			} else {
				req.OK, req.Payload = true, payload
			}
		}
		var resp CompleteResponse
		if perr := w.post(lctx, PathComplete, req, &resp); perr != nil {
			if lctx.Err() != nil {
				return false, w.leaseAborted(lctx, ctx, k)
			}
			return false, perr
		}
		if resp.Duplicate {
			fmt.Fprintf(w.cfg.Log, "dist: worker %s: %s was already terminal (deduplicated)\n", w.cfg.ID, k)
		}
		if resp.Done {
			fmt.Fprintf(w.cfg.Log, "dist: worker %s: build complete\n", w.cfg.ID)
			return true, nil
		}
	}
	return false, nil
}

// leaseAborted resolves a cancelled lease context: a lost lease is a
// normal event (return to the lease loop), a cancelled worker context
// ends the worker.
func (w *worker) leaseAborted(lctx, ctx context.Context, k checkpoint.Key) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	fmt.Fprintf(w.cfg.Log, "dist: worker %s: lease lost mid-unit %s; abandoning (%v)\n",
		w.cfg.ID, k, context.Cause(lctx))
	return nil
}

// heartbeat renews the lease every interval. It cancels the lease
// context when the coordinator rejects a renewal or when renewals have
// failed for longer than the lease TTL (the lease has expired under
// us whether the coordinator said so or not).
func (w *worker) heartbeat(lctx context.Context, leaseID uint64, cancel context.CancelCauseFunc) {
	t := time.NewTicker(w.hb)
	defer t.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-lctx.Done():
			return
		case <-t.C:
		}
		var hr HeartbeatResponse
		err := w.postOnce(lctx, PathHeartbeat, HeartbeatRequest{Worker: w.cfg.ID, LeaseID: leaseID}, &hr)
		switch {
		case err == nil && hr.OK:
			lastOK = time.Now()
			continue
		case err == nil:
			fmt.Fprintf(w.cfg.Log, "dist: worker %s: lease %d rejected by coordinator\n", w.cfg.ID, leaseID)
			cancel(errLeaseLost)
			return
		case time.Since(lastOK) > w.ttl:
			fmt.Fprintf(w.cfg.Log, "dist: worker %s: lease %d heartbeats dark for %v (> ttl)\n",
				w.cfg.ID, leaseID, time.Since(lastOK))
			cancel(errLeaseLost)
			return
		}
	}
}

// maxRequestTries bounds the per-request retry loop. With exponential
// backoff from WorkerConfig.Backoff this rides out coordinator restarts
// and injected network faults without spinning forever against a dead
// address.
const maxRequestTries = 10

// post issues one JSON request with retries. Connection errors, dropped
// and corrupt responses and 5xx answers retry with exponential backoff;
// 4xx answers (fingerprint conflict, malformed request) are permanent.
func (w *worker) post(ctx context.Context, path string, req, resp any) error {
	backoff := w.cfg.Backoff
	var last error
	for try := 0; try < maxRequestTries; try++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = w.postOnce(ctx, path, req, resp)
		if last == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(last, &pe) {
			return pe.err
		}
		fmt.Fprintf(w.cfg.Log, "dist: worker %s: %s try %d: %v\n", w.cfg.ID, path, try+1, last)
		if err := sleep(ctx, backoff); err != nil {
			return err
		}
		if backoff < 16*w.cfg.Backoff {
			backoff *= 2
		}
	}
	return fmt.Errorf("dist: worker %s: %s failed after %d tries: %w", w.cfg.ID, path, maxRequestTries, last)
}

// permanentError wraps a failure retrying cannot fix.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }

// postOnce issues one JSON request without retries.
func (w *worker) postOnce(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return &permanentError{err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return &permanentError{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.cfg.Client.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	switch {
	case hresp.StatusCode == http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return &permanentError{fmt.Errorf("%w: %s", ErrSpecMismatch, bytes.TrimSpace(msg))}
	case hresp.StatusCode >= 400 && hresp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return &permanentError{fmt.Errorf("dist: %s: %s: %s", path, hresp.Status, bytes.TrimSpace(msg))}
	case hresp.StatusCode != http.StatusOK:
		return fmt.Errorf("dist: %s: %s", path, hresp.Status)
	}
	// A corrupt or truncated body decodes as an error here and retries:
	// every request is idempotent from the coordinator's side.
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(resp); err != nil {
		return fmt.Errorf("dist: %s: decoding response: %w", path, err)
	}
	return nil
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
