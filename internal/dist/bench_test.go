package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lvf2/internal/checkpoint"
	"lvf2/internal/faultinject"
	"lvf2/internal/libbuild"
)

// floorExecutor imposes a fixed per-unit compute floor on top of the
// real executor. The CI box is a single core, so real CPU-bound fitting
// cannot show multi-worker wall-clock scaling there; the floor stands
// in for the per-unit Monte-Carlo cost of a paper-scale build (tens of
// milliseconds and up), which workers genuinely overlap through the
// lease pipeline. The benchmark therefore measures protocol/pipeline
// scaling — lease turnaround, heartbeats, submission — not arithmetic
// throughput; on a multi-core host the same harness scales the real
// compute too.
type floorExecutor struct {
	inner UnitExecutor
	floor time.Duration
}

func (f *floorExecutor) Execute(ctx context.Context, k checkpoint.Key) ([]byte, error) {
	t := time.NewTimer(f.floor)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return f.inner.Execute(ctx, k)
}

func (f *floorExecutor) Salvage(ctx context.Context, k checkpoint.Key) ([]byte, string, error) {
	return f.inner.Salvage(ctx, k)
}

// BenchmarkCharWork measures one full distributed characterisation
// (8 units, 100ms simulated compute floor each) end to end: coordinator
// up, N workers join, lease, execute, submit, drain. The workers=1 /
// workers=4 ratio in BENCH_charwork.json is the scaling evidence: with
// units dominated by the compute floor, four workers should finish the
// same build at least 3x faster than one.
func BenchmarkCharWork(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchCharWork(b, workers)
		})
	}
}

func benchCharWork(b *testing.B, workers int) {
	const floor = 100 * time.Millisecond
	fp := benchBuild(nil).Fingerprint()
	newExec := func(cfg libbuild.Config) (UnitExecutor, error) {
		inner, err := libbuild.NewExecutor(cfg)
		if err != nil {
			return nil, err
		}
		return &floorExecutor{inner: inner, floor: floor}, nil
	}

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fsys := faultinject.NewMemFS()
		j, err := checkpoint.Open(fsys, "ckpt", fp, checkpoint.Options{})
		if err != nil {
			b.Fatal(err)
		}
		c, err := NewCoordinator(CoordinatorConfig{
			Build:    benchBuild(j),
			LeaseTTL: 5 * time.Second,
			PollWait: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(c.Handler())

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := RunWorker(ctx, WorkerConfig{
					ID:          fmt.Sprintf("bench-w%d", w),
					URL:         srv.URL,
					NewExecutor: newExec,
				}); err != nil {
					b.Errorf("worker %d: %v", w, err)
				}
			}(w)
		}
		wg.Wait()
		cancel()
		if !c.Done() {
			b.Fatal("build did not drain")
		}
		srv.Close()
		j.Close()
	}
	b.ReportMetric(float64(8*b.N)/b.Elapsed().Seconds(), "units/s")
}

// benchBuild is the benchmark's 8-unit build (one INV arc, 2x2 grid)
// with a reduced sample count: the floor, not the arithmetic, should
// dominate each unit.
func benchBuild(j *checkpoint.Journal) libbuild.Config {
	cfg := smallBuild(j)
	cfg.Char.Samples = 100
	return cfg
}
