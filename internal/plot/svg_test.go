package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "Fig 3 <demo> & test",
		XLabel: "delay (ns)",
		YLabel: "pdf",
		Series: []Series{
			{Name: "golden", X: []float64{0, 1, 2}, Y: []float64{0, 1, 0}},
			{Name: "LVF2", X: []float64{0, 1, 2}, Y: []float64{0.1, 0.9, 0.1}, Dashed: true},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("no polylines")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// Title escaped.
	if !strings.Contains(svg, "&lt;demo&gt; &amp; test") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("dashed series lost")
	}
}

func TestLineChartLogY(t *testing.T) {
	c := LineChart{
		LogY: true,
		Series: []Series{
			{Name: "r", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	// Log axis: tick labels are back-transformed to linear values, so the
	// top label lands near 10^(2+5% padding) ≈ 126, far above the raw log
	// value 2.1 a linear axis would show.
	if !strings.Contains(svg, ">126<") {
		t.Errorf("log tick labels missing:\n%s", svg)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	svg := LineChart{}.SVG()
	wellFormed(t, svg)
	// NaN-only series must not emit NaN coordinates.
	c := LineChart{Series: []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}}
	if strings.Contains(c.SVG(), "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestHeatmapSVG(t *testing.T) {
	hm := Heatmap{
		Title:  "Fig 4 (a)",
		XTicks: []string{"sw1", "sw2"},
		YTicks: []string{"cap1", "cap2", "cap3"},
		Values: [][]float64{{1, 2}, {3, 4}, {5, 6.7}},
	}
	svg := hm.SVG()
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got != 1+6 {
		t.Errorf("want background + 6 cells, got %d rects", got)
	}
	if !strings.Contains(svg, "6.7") {
		t.Error("cell annotation missing")
	}
	if !strings.Contains(svg, "cap3") {
		t.Error("row tick missing")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	wellFormed(t, Heatmap{}.SVG())
}

func TestRampColorBounds(t *testing.T) {
	if rampColor(0) != "#ffffff" {
		t.Errorf("t=0: %s", rampColor(0))
	}
	if rampColor(1) != "#0b4f9e" {
		t.Errorf("t=1: %s", rampColor(1))
	}
	if rampColor(-5) != rampColor(0) || rampColor(5) != rampColor(1) {
		t.Error("clamping")
	}
}
