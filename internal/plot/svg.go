// Package plot renders the paper's figures as standalone SVG files using
// only the standard library: multi-series line charts (Fig. 3 PDFs and
// Fig. 5 reduction curves) and heat maps (Fig. 4 accuracy patterns).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline of a line chart.
type Series struct {
	Name   string
	X, Y   []float64
	Color  string // CSS color; defaults from the palette by index
	Dashed bool
}

// palette is a colour-blind-safe default cycle.
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"}

// LineChart describes a chart.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // default 720
	Height int // default 440
	Series []Series
	// LogY plots log10(y) (useful for error-reduction curves).
	LogY bool
}

const chartMargin = 56.0

// SVG renders the chart.
func (c LineChart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 440
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tr := func(y float64) float64 {
		if c.LogY {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], tr(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% y padding.
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 {
		return chartMargin + (x-xmin)/(xmax-xmin)*(float64(w)-2*chartMargin)
	}
	py := func(y float64) float64 {
		return float64(h) - chartMargin - (y-ymin)/(ymax-ymin)*(float64(h)-2*chartMargin)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="15">%s</text>`+"\n", w/2, xmlEscape(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		chartMargin, float64(h)-chartMargin, float64(w)-chartMargin, float64(h)-chartMargin)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		chartMargin, chartMargin, chartMargin, float64(h)-chartMargin)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + float64(i)/4*(xmax-xmin)
		fy := ymin + float64(i)/4*(ymax-ymin)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px(fx), float64(h)-chartMargin, px(fx), float64(h)-chartMargin+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(fx), float64(h)-chartMargin+18, fmtTick(fx))
		label := fy
		if c.LogY {
			label = math.Pow(10, fy)
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			chartMargin-5, py(fy), chartMargin, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			chartMargin-8, py(fy)+4, fmtTick(label))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			w/2, h-12, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			h/2, h/2, xmlEscape(c.YLabel))
	}
	// Series.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = palette[si%len(palette)]
		}
		var pts []string
		for i := range s.X {
			y := tr(s.Y[i])
			if math.IsNaN(y) || math.IsNaN(s.X[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(y)))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
			strings.Join(pts, " "), color, dash)
		// Legend entry.
		ly := chartMargin + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"%s/>`+"\n",
			float64(w)-chartMargin-110, ly, float64(w)-chartMargin-86, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n",
			float64(w)-chartMargin-80, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Heatmap describes a coloured grid (Fig. 4 style).
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks and YTicks label the columns and rows.
	XTicks []string
	YTicks []string
	// Values[row][col]; rows render top to bottom.
	Values [][]float64
	Width  int
	Height int
}

// SVG renders the heat map with a white→blue ramp and per-cell value
// annotations.
func (hm Heatmap) SVG() string {
	rows := len(hm.Values)
	if rows == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"/>`
	}
	cols := len(hm.Values[0])
	w, h := hm.Width, hm.Height
	if w <= 0 {
		w = 90 + cols*58
	}
	if h <= 0 {
		h = 90 + rows*34
	}
	vmin, vmax := math.Inf(1), math.Inf(-1)
	for _, row := range hm.Values {
		for _, v := range row {
			vmin, vmax = math.Min(vmin, v), math.Max(vmax, v)
		}
	}
	if vmax == vmin {
		vmax = vmin + 1
	}
	cellW := float64(w-90) / float64(cols)
	cellH := float64(h-90) / float64(rows)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if hm.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", w/2, xmlEscape(hm.Title))
	}
	for r := 0; r < rows; r++ {
		for cIdx := 0; cIdx < cols; cIdx++ {
			v := hm.Values[r][cIdx]
			t := (v - vmin) / (vmax - vmin)
			x := 70 + float64(cIdx)*cellW
			y := 40 + float64(r)*cellH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#ddd"/>`+"\n",
				x, y, cellW, cellH, rampColor(t))
			txt := "#000"
			if t > 0.6 {
				txt = "#fff"
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="%s">%s</text>`+"\n",
				x+cellW/2, y+cellH/2+4, txt, fmtTick(v))
		}
	}
	for cIdx, tick := range hm.XTicks {
		if cIdx >= cols {
			break
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			70+(float64(cIdx)+0.5)*cellW, 40+float64(rows)*cellH+16, xmlEscape(tick))
	}
	for r, tick := range hm.YTicks {
		if r >= rows {
			break
		}
		fmt.Fprintf(&b, `<text x="64" y="%.1f" text-anchor="end">%s</text>`+"\n",
			40+(float64(r)+0.5)*cellH+4, xmlEscape(tick))
	}
	if hm.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", w/2, h-8, xmlEscape(hm.XLabel))
	}
	if hm.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			h/2, h/2, xmlEscape(hm.YLabel))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// rampColor maps t ∈ [0,1] onto a white→blue ramp.
func rampColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := int(255 - t*(255-11))
	g := int(255 - t*(255-79))
	bl := int(255 - t*(255-158))
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a == 0:
		return "0"
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.1f", v)
	case a >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
