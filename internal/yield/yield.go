// Package yield estimates rare-event timing yield: P(delay > T) when the
// clock target T sits 3–6 golden sigmas out, where the brute-force Monte
// Carlo behind binning.YieldAtSigma needs 10⁷–10¹¹ samples. It provides a
// ladder of interchangeable estimators behind one interface —
//
//   - plain MC: the unbiased baseline and the degraded-mode fallback;
//   - MNIS: mean-shift importance sampling — find a minimum-norm failure
//     point in the standardised process space, re-centre the Gaussian-LHS
//     sampler there, and unweight each sample by its likelihood ratio
//     (the OpenYield / ISLE recipe for SRAM and timing tails);
//   - AIS: adaptive importance sampling — start from the same failure
//     point but iteratively re-centre the proposal on the weighted mean
//     of the failures actually observed, tracking failure regions the
//     min-norm point alone describes poorly.
//
// Every estimator runs under a confidence-interval contract: it draws
// batches until the relative CI half-width on the failure probability
// reaches the target (default ±1% at 95%) or a sample/deadline budget is
// exhausted — never for a fixed count. Results always carry the achieved
// CI, the estimator variance and the effective sample size, so a caller
// can tell a converged answer from a budget-capped partial one.
package yield

import (
	"context"
	"fmt"
	"math"

	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

// Spec describes one rare-event problem over the standardised process
// space: a sample x ~ N(0,1)^Dim fails when Eval(x) > Threshold.
type Spec struct {
	// Dim is the dimensionality of the standardised process space
	// (spice.NumParams for electrical-model specs, 1 for latent specs).
	Dim int
	// Eval returns the performance metric (delay) at one process vector.
	// The slice is only valid for the duration of the call. Eval must be
	// deterministic: the estimators re-evaluate regions freely.
	Eval func(x []float64) float64
	// Threshold is the failure boundary (the clock target): a sample
	// fails when Eval(x) > Threshold.
	Threshold float64
}

func (s Spec) validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("yield: spec dimension %d, want > 0", s.Dim)
	}
	if s.Eval == nil {
		return fmt.Errorf("yield: spec has no Eval function")
	}
	return nil
}

// Contract is the stopping rule every estimator runs under. Zero fields
// take the defaults; see WithDefaults.
type Contract struct {
	// RelErr is the target relative CI half-width on the failure
	// probability: sampling stops once z·stderr/p̂ ≤ RelErr (default 0.01,
	// the ±1% contract).
	RelErr float64
	// Level is the confidence level of the interval (default 0.95).
	Level float64
	// Batch is the number of samples drawn per convergence check
	// (default 4096). Context cancellation is honoured between batches.
	Batch int
	// MaxSamples bounds the total evaluation budget, failure-point search
	// included (default 1<<22 ≈ 4.2M). A run that exhausts it returns its
	// partial estimate with Converged=false.
	MaxSamples int
	// MinFailures is the number of observed failures required before the
	// normal-approximation CI is trusted (default 8): below it the
	// variance estimate itself is noise and the contract cannot close.
	MinFailures int
	// Seed seeds the deterministic sampler (default 0x51e1d). Identical
	// (Spec, Contract) inputs produce bit-identical Results.
	Seed uint64
}

// WithDefaults fills zero fields with the package defaults.
func (c Contract) WithDefaults() Contract {
	if c.RelErr <= 0 {
		c.RelErr = 0.01
	}
	if c.Level <= 0 || c.Level >= 1 {
		c.Level = 0.95
	}
	if c.Batch <= 0 {
		c.Batch = 4096
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1 << 22
	}
	if c.MinFailures <= 0 {
		c.MinFailures = 8
	}
	if c.Seed == 0 {
		c.Seed = 0x51e1d
	}
	return c
}

// Interval is a confidence interval on the failure probability.
type Interval struct {
	Lo, Hi float64
	Level  float64
}

// Result is one finished (or budget-capped) estimate.
type Result struct {
	// Estimator is the name of the estimator that produced the result.
	Estimator string
	// FailProb is the estimated failure probability P(Eval > Threshold);
	// Yield is its complement.
	FailProb float64
	Yield    float64
	// StdErr is the estimator's standard error; Variance its square. Both
	// describe the estimator (they shrink with samples), not the
	// population.
	StdErr   float64
	Variance float64
	// CI is the normal-approximation confidence interval at the contract
	// level, clamped to [0,1]. With zero observed failures it degrades to
	// the exact binomial upper bound (rule of three).
	CI Interval
	// HalfWidth is the absolute CI half-width before [0,1] clamping (the
	// zero-failure bound itself for zero-failure runs); RelHalfWidth is
	// HalfWidth/FailProb, +Inf when the estimate is zero. Callers that
	// combine per-component estimates (netlist yield) propagate HalfWidth.
	HalfWidth    float64
	RelHalfWidth float64
	// ESS is the Kish effective sample size (Σw)²/Σw² over the likelihood
	// ratios of all drawn samples — n for plain MC, smaller whenever the
	// proposal mismatches the nominal distribution.
	ESS float64
	// Samples is the total evaluation count, failure-point search
	// included; SearchEvals is the search share of it.
	Samples     int
	SearchEvals int
	// Batches is the number of convergence checks performed.
	Batches int
	// Failures is the number of failure-region hits observed.
	Failures int
	// Converged reports whether the CI contract was met within budget.
	Converged bool
	// Shift is the proposal centre the estimator ended on (nil for plain
	// MC): the mean-shift vector of MNIS, the final adapted centre of AIS.
	Shift []float64
}

// Estimator is one rung of the ladder. Estimate must be deterministic
// for fixed (Spec, Contract) and must honour ctx between batches,
// returning its partial estimate (Converged=false) rather than an error
// when the deadline or budget cuts sampling short.
type Estimator interface {
	Name() string
	Estimate(ctx context.Context, spec Spec, c Contract) (Result, error)
}

// Names lists the estimator ladder in escalation order.
var Names = []string{"mc", "mnis", "ais"}

// New returns the named estimator.
func New(name string) (Estimator, error) {
	switch name {
	case "mc":
		return plainMC{}, nil
	case "mnis":
		return mnis{}, nil
	case "ais":
		return ais{}, nil
	}
	return nil, fmt.Errorf("yield: unknown estimator %q (want mc|mnis|ais)", name)
}

// matrixPool recycles the sample matrices across estimates, sharing the
// pooled-plan pattern of the spice characterisation workers.
var matrixPool mc.MatrixPool

// acc accumulates the weighted failure indicators u_i = w_i·1{fail} of
// one estimate, plus the all-sample likelihood-ratio moments for the ESS
// diagnostic.
type acc struct {
	n           int
	sum, sum2   float64 // Σu, Σu² over the failure indicators
	wsum, wsum2 float64 // Σw, Σw² over every drawn sample
	failures    int
	batches     int
}

func (a *acc) observe(w float64, failed bool) {
	a.n++
	a.wsum += w
	a.wsum2 += w * w
	if failed {
		a.sum += w
		a.sum2 += w * w
		a.failures++
	}
}

// zScore is the two-sided standard-normal critical value of the level.
func zScore(level float64) float64 {
	return stats.StdNormQuantile(0.5 + level/2)
}

// result snapshots the accumulator into a Result. searchEvals are charged
// to the sample count but carry no statistical weight.
func (a *acc) result(name string, c Contract, searchEvals int, shift []float64) Result {
	r := Result{
		Estimator:   name,
		Samples:     a.n + searchEvals,
		SearchEvals: searchEvals,
		Batches:     a.batches,
		Failures:    a.failures,
		CI:          Interval{Level: c.Level},
		Shift:       shift,
	}
	if a.n == 0 {
		r.RelHalfWidth = math.Inf(1)
		r.CI.Hi = 1
		r.Yield = 1
		return r
	}
	n := float64(a.n)
	pf := a.sum / n
	r.FailProb = pf
	r.Yield = 1 - pf
	if a.wsum2 > 0 {
		r.ESS = a.wsum * a.wsum / a.wsum2
	}
	if a.failures == 0 {
		// No failure observed: the variance estimate is identically zero
		// and says nothing. Report the exact binomial upper bound
		// P(no failure in n) = (1-p)^n — the "rule of three" — which for
		// importance-sampling proposals shifted into the failure region is
		// conservative too (likelihood ratios there are below one).
		r.RelHalfWidth = math.Inf(1)
		r.CI.Hi = 1 - math.Pow(1-c.Level, 1/n)
		r.HalfWidth = r.CI.Hi
		return r
	}
	if a.n > 1 {
		s2 := (a.sum2 - n*pf*pf) / (n - 1)
		if s2 < 0 {
			s2 = 0
		}
		r.Variance = s2 / n
		r.StdErr = math.Sqrt(r.Variance)
	}
	hw := zScore(c.Level) * r.StdErr
	r.HalfWidth = hw
	r.CI.Lo = math.Max(0, pf-hw)
	r.CI.Hi = math.Min(1, pf+hw)
	if pf > 0 {
		r.RelHalfWidth = hw / pf
	} else {
		r.RelHalfWidth = math.Inf(1)
	}
	r.Converged = a.failures >= c.MinFailures && r.RelHalfWidth <= c.RelErr
	return r
}

// sampleLoop is the shared CI-contract driver: it draws Gaussian-LHS
// batches from N(center, I) — a nil center is the nominal process
// distribution, i.e. plain MC — scores every sample's likelihood ratio
// and failure indicator, and stops at the first convergence check that
// meets the contract, or when the budget (minus evals already spent on
// the failure-point search) or the context deadline runs out.
func sampleLoop(ctx context.Context, spec Spec, c Contract, rng *mc.RNG, center []float64, searchEvals int, name string) Result {
	m := matrixPool.Get()
	defer matrixPool.Put(m)

	var a acc
	var halfNorm2 float64
	var x []float64
	if center != nil {
		for _, ci := range center {
			halfNorm2 += ci * ci / 2
		}
		x = make([]float64, spec.Dim)
	}
	budget := c.MaxSamples - searchEvals
	for a.n < budget && ctx.Err() == nil {
		batch := c.Batch
		if rem := budget - a.n; batch > rem {
			batch = rem
		}
		pts := mc.GaussianLHSInto(rng, batch, spec.Dim, m)
		for _, z := range pts {
			w := 1.0
			row := z
			if center != nil {
				// x = z + c drawn from N(c, I); the likelihood ratio against
				// the nominal N(0, I) is φ(x)/φ(x−c) = exp(−z·c − ‖c‖²/2).
				var dot float64
				for j, cj := range center {
					dot += z[j] * cj
					x[j] = z[j] + cj
				}
				w = math.Exp(-dot - halfNorm2)
				row = x
			}
			a.observe(w, spec.Eval(row) > spec.Threshold)
		}
		a.batches++
		if r := a.result(name, c, searchEvals, nil); r.Converged {
			break
		}
	}
	r := a.result(name, c, searchEvals, center)
	observeEstimate(r)
	return r
}

// plainMC is the baseline rung: unweighted sampling from the nominal
// process distribution. Exact and assumption-free, but needs ~z²/(p·ε²)
// samples — hopeless beyond ~4σ.
type plainMC struct{}

func (plainMC) Name() string { return "mc" }

func (plainMC) Estimate(ctx context.Context, spec Spec, c Contract) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	c = c.WithDefaults()
	rng := mc.NewRNG(c.Seed)
	return sampleLoop(ctx, spec, c, rng, nil, 0, "mc"), nil
}

// ProjectedSamples extrapolates how many samples an estimator at this
// result's variance level would need to close the contract. For a
// partial plain-MC run this is the honest "what would it cost" figure
// the benchmarks report; returns 0 when the result carries no usable
// probability estimate.
func ProjectedSamples(r Result, c Contract) float64 {
	c = c.WithDefaults()
	if r.FailProb <= 0 || r.Samples == 0 {
		return 0
	}
	if r.Converged {
		return float64(r.Samples)
	}
	// n ≈ (z/ε)² · Var₁/p² with Var₁ the single-sample variance
	// n·StdErr².
	z := zScore(c.Level)
	var1 := float64(r.Samples-r.SearchEvals) * r.Variance
	if var1 <= 0 {
		// Plain-MC Bernoulli fallback: Var₁ = p(1−p).
		var1 = r.FailProb * (1 - r.FailProb)
	}
	n := (z / c.RelErr) * (z / c.RelErr) * var1 / (r.FailProb * r.FailProb)
	return math.Ceil(n)
}
