package yield

import (
	"math"

	"lvf2/internal/obs"
)

// Estimator observability. Like the fit warm-start counters, the series
// live in the process-wide default registry so every caller — the lvf2d
// /v1/yield fast path, the experiment tables, the benchmarks — reports
// through the same two series without per-caller wiring.
var (
	samplesVec = obs.NewCounterVec(obs.Default(),
		"lvf2_yield_samples_total",
		"process-space evaluations spent by the rare-event yield estimators (failure-point search included)",
		"estimator")
	samplesMC   = samplesVec.With("mc")
	samplesMNIS = samplesVec.With("mnis")
	samplesAIS  = samplesVec.With("ais")

	ciHalfWidth = obs.NewHistogram(obs.Default(),
		"lvf2_yield_ci_rel_halfwidth",
		"relative confidence-interval half-width achieved by finished yield estimates",
		obs.DefaultRatioBuckets)
)

// observeEstimate records one finished estimate: its sample spend and
// the CI width it achieved (zero-failure runs have no finite width and
// skip the histogram).
func observeEstimate(r Result) {
	switch r.Estimator {
	case "mc":
		samplesMC.Add(int64(r.Samples))
	case "mnis":
		samplesMNIS.Add(int64(r.Samples))
	case "ais":
		samplesAIS.Add(int64(r.Samples))
	default:
		samplesVec.Add(int64(r.Samples), r.Estimator)
	}
	if !math.IsInf(r.RelHalfWidth, 1) {
		ciHalfWidth.Observe(r.RelHalfWidth)
	}
}
