package yield

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkYieldContract measures samples-to-contract for every
// estimator rung at 3σ/4σ/5σ on the 6-dimensional process-space INV
// problem — the BENCH_yield.json evidence behind the estimator ladder:
// MNIS/AIS close the ±1% CI at 4σ and 5σ inside budgets where plain MC
// cannot, at orders of magnitude fewer samples than MC needs (reported
// as samples-to-target/op, projected from MC's achieved variance when
// the budget caps it — the converged=0 metric flags those rows).
//
// Under -short (the bench-smoke gate) the sigma ladder shrinks to 3σ
// with a relaxed contract so the full code path runs in seconds.
func BenchmarkYieldContract(b *testing.B) {
	sigmas := []float64{3, 4, 5}
	contract := Contract{}
	if testing.Short() {
		sigmas = []float64{3}
		contract = Contract{RelErr: 0.05, MaxSamples: 1 << 19}
	}
	for _, sigma := range sigmas {
		spec := arcSpec(b, sigma)
		for _, name := range Names {
			c := contract
			if !testing.Short() && name == "mc" && sigma == 3 {
				// Plain MC can genuinely close the 3σ contract; give it the
				// budget to do so, so the baseline row is a real measurement.
				c.MaxSamples = 1 << 25
			}
			b.Run(fmt.Sprintf("sigma%g/%s", sigma, name), func(b *testing.B) {
				est, err := New(name)
				if err != nil {
					b.Fatal(err)
				}
				var r Result
				for i := 0; i < b.N; i++ {
					r, err = est.Estimate(context.Background(), spec, c)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Samples), "samples/op")
				b.ReportMetric(ProjectedSamples(r, c), "samples-to-target/op")
				b.ReportMetric(r.FailProb, "failprob/op")
				b.ReportMetric(boolMetric(r.Converged), "converged/op")
				if r.RelHalfWidth < 1e6 {
					b.ReportMetric(r.RelHalfWidth, "ci-rel/op")
				}
			})
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkYieldLatent measures the fitted-model serving fast path: the
// one-dimensional latent spec the /v1/yield handler runs per request.
func BenchmarkYieldLatent(b *testing.B) {
	spec := gaussianSpec(4)
	est, _ := New("mnis")
	b.ReportAllocs()
	var r Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = est.Estimate(context.Background(), spec, Contract{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Samples), "samples/op")
}
