package yield

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lvf2/internal/mc"
)

// ErrNoFailureRegion reports that the failure-point search exhausted its
// budget without ever observing Eval > Threshold — either the event is
// beyond the searched radius (deep sub-ppb territory) or the region is
// disconnected from every probed ray. Callers degrade to plain MC, whose
// zero-failure answer at least bounds the probability.
var ErrNoFailureRegion = errors.New("yield: no failure region found within the search budget")

// searchRadius bounds the radial search at 9σ: a spherical failure region
// beyond it has probability below ~1e-19, outside any contract this
// engine serves.
const searchRadius = 9.0

// mnis is mean-shift (minimum-norm) importance sampling: locate the
// most-probable failure point x* — the failure point of smallest norm,
// FORM's "design point" — shift the proposal to N(x*, I), and unweight by
// the likelihood ratio. One search, one fixed proposal, then the shared
// CI-contract loop.
type mnis struct{}

func (mnis) Name() string { return "mnis" }

func (mnis) Estimate(ctx context.Context, spec Spec, c Contract) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	c = c.WithDefaults()
	rng := mc.NewRNG(c.Seed)
	center, evals, ok := minNormFailure(spec, rng, searchBudget(c))
	if !ok {
		return Result{}, fmt.Errorf("%w (estimator mnis, %d evals)", ErrNoFailureRegion, evals)
	}
	return sampleLoop(ctx, spec, c, rng, center, evals, "mnis"), nil
}

// searchBudget caps the failure-point search at a quarter of the total
// budget so at least three quarters remain for actual sampling.
func searchBudget(c Contract) int {
	b := c.MaxSamples / 4
	if b > 16384 {
		b = 16384
	}
	if b < 256 {
		b = 256
	}
	return b
}

// minNormFailure searches for the minimum-norm failure point of the spec.
// Rays from the origin are probed with an exponential bracket followed by
// bisection — treating the failure indicator as monotone along a ray,
// which holds for delay metrics that degrade monotonically away from
// nominal and is only a search heuristic otherwise — first along the
// coordinate axes, then along seeded random directions, and finally the
// best direction is polished by perturbation. Returns the point, the
// evaluations spent, and whether any failure was found at all.
func minNormFailure(spec Spec, rng *mc.RNG, budget int) (pt []float64, evals int, ok bool) {
	fail := func(x []float64) bool {
		evals++
		return spec.Eval(x) > spec.Threshold
	}

	d := spec.Dim
	x := make([]float64, d)
	// The origin failing means P(fail) > ½ under any monotone metric:
	// no shift is needed and MNIS degenerates gracefully to plain MC.
	if fail(x) {
		return make([]float64, d), evals, true
	}

	at := func(u []float64, r float64) []float64 {
		for j := range x {
			x[j] = r * u[j]
		}
		return x
	}
	// rayMin returns the minimal failing radius along unit direction u,
	// or NaN when the ray never fails within searchRadius.
	rayMin := func(u []float64) float64 {
		lo, hi := 0.0, math.NaN()
		for r := 1.0; r <= searchRadius; r *= 1.7 {
			if fail(at(u, r)) {
				hi = r
				break
			}
			lo = r
		}
		if math.IsNaN(hi) {
			if !fail(at(u, searchRadius)) {
				return math.NaN()
			}
			hi = searchRadius
		}
		for i := 0; i < 26; i++ {
			mid := (lo + hi) / 2
			if fail(at(u, mid)) {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}

	best := math.Inf(1)
	bestU := make([]float64, d)
	consider := func(u []float64) {
		if r := rayMin(u); r < best {
			best = r
			copy(bestU, u)
		}
	}

	u := make([]float64, d)
	for j := 0; j < d && evals < budget/2; j++ {
		for _, sign := range [...]float64{1, -1} {
			for k := range u {
				u[k] = 0
			}
			u[j] = sign
			consider(u)
		}
	}
	for evals < budget/2 {
		var norm float64
		for j := range u {
			u[j] = rng.NormFloat64()
			norm += u[j] * u[j]
		}
		if norm == 0 {
			continue
		}
		norm = math.Sqrt(norm)
		for j := range u {
			u[j] /= norm
		}
		consider(u)
	}
	if math.IsInf(best, 1) {
		return nil, evals, false
	}

	// Polish: perturb the best direction with shrinking Gaussian noise,
	// keeping any direction whose minimal failing radius improves.
	sigma := 0.3
	for evals < budget {
		var norm float64
		for j := range u {
			u[j] = bestU[j] + sigma*rng.NormFloat64()
			norm += u[j] * u[j]
		}
		if norm == 0 {
			continue
		}
		norm = math.Sqrt(norm)
		for j := range u {
			u[j] /= norm
		}
		if r := rayMin(u); r < best {
			best = r
			copy(bestU, u)
		} else {
			sigma *= 0.95
		}
	}

	pt = make([]float64, d)
	for j := range pt {
		pt[j] = best * bestU[j]
	}
	return pt, evals, true
}
