package yield

import (
	"context"
	"fmt"
	"math"

	"lvf2/internal/mc"
)

// aisAdaptRounds bounds how many batches may move the proposal centre;
// after them the centre freezes and sampling continues under the fixed
// proposal until the contract closes or the budget runs out.
const aisAdaptRounds = 8

// aisCenterCap clamps the adapted centre norm: a pathological weight
// configuration must not walk the proposal out past the searched radius.
const aisCenterCap = searchRadius + 1

// ais is adaptive importance sampling: it starts from the same min-norm
// failure point as MNIS, but after each batch re-centres the proposal on
// the likelihood-weighted mean of the failure samples observed so far in
// that batch — tracking failure regions whose mass sits away from the
// single min-norm point (curved boundaries, multi-mechanism arcs, the
// very shapes the LVF² mixture exists for). Every sample is unweighted
// against the proposal of its own round, so the pooled estimate stays
// unbiased across adaptation.
type ais struct{}

func (ais) Name() string { return "ais" }

func (ais) Estimate(ctx context.Context, spec Spec, c Contract) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	c = c.WithDefaults()
	rng := mc.NewRNG(c.Seed)
	center, searchEvals, ok := minNormFailure(spec, rng, searchBudget(c)/2)
	if !ok {
		return Result{}, fmt.Errorf("%w (estimator ais, %d evals)", ErrNoFailureRegion, searchEvals)
	}

	m := matrixPool.Get()
	defer matrixPool.Put(m)

	var a acc
	d := spec.Dim
	x := make([]float64, d)
	cx := make([]float64, d) // weighted failure centroid accumulator
	budget := c.MaxSamples - searchEvals
	for a.n < budget && ctx.Err() == nil {
		batch := c.Batch
		if rem := budget - a.n; batch > rem {
			batch = rem
		}
		var halfNorm2 float64
		for _, ci := range center {
			halfNorm2 += ci * ci / 2
		}
		var cw float64
		for j := range cx {
			cx[j] = 0
		}
		pts := mc.GaussianLHSInto(rng, batch, d, m)
		for _, z := range pts {
			var dot float64
			for j, cj := range center {
				dot += z[j] * cj
				x[j] = z[j] + cj
			}
			w := math.Exp(-dot - halfNorm2)
			failed := spec.Eval(x) > spec.Threshold
			a.observe(w, failed)
			if failed && a.batches < aisAdaptRounds {
				cw += w
				for j, xj := range x {
					cx[j] += w * xj
				}
			}
		}
		a.batches++
		if r := a.result("ais", c, searchEvals, nil); r.Converged {
			break
		}
		if a.batches <= aisAdaptRounds && cw > 0 {
			var norm float64
			for j := range center {
				center[j] = cx[j] / cw
				norm += center[j] * center[j]
			}
			if norm = math.Sqrt(norm); norm > aisCenterCap {
				for j := range center {
					center[j] *= aisCenterCap / norm
				}
			}
		}
	}
	r := a.result("ais", c, searchEvals, center)
	observeEstimate(r)
	return r, nil
}
