package yield

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"lvf2/internal/cells"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
	"lvf2/internal/stats"
)

// gaussianSpec is the analytic oracle: a pure-Gaussian arc whose tail
// probability beyond μ+sσ is exactly Φ(−s).
func gaussianSpec(s float64) Spec {
	return FromDist(stats.Normal{Mu: 0.012, Sigma: 0.0008}, 0.012+s*0.0008)
}

// TestOracleGaussianTail: on a pure-Gaussian arc the IS estimators must
// match the closed-form tail probability at 4σ–6σ within the CI they
// themselves report. Everything is seeded, so this is a sharp check, not
// a flaky 95% one.
func TestOracleGaussianTail(t *testing.T) {
	for _, sigma := range []float64{4, 5, 6} {
		truth := stats.StdNormCDF(-sigma)
		spec := gaussianSpec(sigma)
		for _, name := range []string{"mnis", "ais"} {
			est, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			r, err := est.Estimate(context.Background(), spec, Contract{})
			if err != nil {
				t.Fatalf("%s at %gσ: %v", name, sigma, err)
			}
			if !r.Converged {
				t.Errorf("%s at %gσ: not converged after %d samples (rel %.3g)", name, sigma, r.Samples, r.RelHalfWidth)
			}
			if truth < r.CI.Lo || truth > r.CI.Hi {
				t.Errorf("%s at %gσ: closed-form %.4g outside reported CI [%.4g, %.4g] (p̂=%.4g)",
					name, sigma, truth, r.CI.Lo, r.CI.Hi, r.FailProb)
			}
			if r.RelHalfWidth > 0.01 {
				t.Errorf("%s at %gσ: rel half-width %.4g > contract 0.01", name, sigma, r.RelHalfWidth)
			}
			if r.ESS <= 0 || r.ESS > float64(r.Samples) {
				t.Errorf("%s at %gσ: ESS %.1f outside (0, %d]", name, sigma, r.ESS, r.Samples)
			}
		}
	}
}

// TestOracleGaussianTailMC: plain MC agrees with the oracle where it can
// afford to (2σ), pinning the unweighted path of the shared loop.
func TestOracleGaussianTailMC(t *testing.T) {
	const sigma = 2.0
	truth := stats.StdNormCDF(-sigma)
	est, _ := New("mc")
	r, err := est.Estimate(context.Background(), gaussianSpec(sigma), Contract{RelErr: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("mc at 2σ not converged after %d samples", r.Samples)
	}
	if truth < r.CI.Lo || truth > r.CI.Hi {
		t.Errorf("mc at 2σ: closed-form %.4g outside CI [%.4g, %.4g]", truth, r.CI.Lo, r.CI.Hi)
	}
	if got := math.Round(r.ESS); got != float64(r.Samples-r.SearchEvals) {
		t.Errorf("plain-MC ESS %.1f, want the sample count %d", r.ESS, r.Samples)
	}
}

// arcSpec is the 6-dimensional process-space problem the engine serves:
// an INV delay arc at one grid point, thresholded at the golden μ+kσ.
func arcSpec(t testing.TB, sigma float64) Spec {
	t.Helper()
	inv, ok := cells.CellByName("INV")
	if !ok {
		t.Fatal("no INV cell")
	}
	arc := inv.Arcs()[0]
	corner := spice.TTCorner()
	const slew, load = 0.02, 0.008
	// Golden moments from a moderate MC pass set the threshold.
	res := arc.Elec.Characterize(corner, mc.NewRNG(0xfeed), 20000, slew, load)
	var mean, m2 float64
	for i, d := range res.Delays {
		delta := d - mean
		mean += delta / float64(i+1)
		m2 += delta * (d - mean)
	}
	std := math.Sqrt(m2 / float64(len(res.Delays)-1))
	return FromArc(arc.Elec, corner, MetricDelay, slew, load, mean+sigma*std)
}

// TestProcessSpaceCrossCheck: on the real 6-dim electrical model, MNIS
// and AIS at 3σ must agree with a plain-MC reference — their CIs overlap.
func TestProcessSpaceCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check needs a plain-MC reference run")
	}
	spec := arcSpec(t, 3)
	mcEst, _ := New("mc")
	ref, err := mcEst.Estimate(context.Background(), spec, Contract{RelErr: 0.05, MaxSamples: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Failures < 50 {
		t.Fatalf("reference MC saw only %d failures", ref.Failures)
	}
	for _, name := range []string{"mnis", "ais"} {
		est, _ := New(name)
		r, err := est.Estimate(context.Background(), spec, Contract{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Converged {
			t.Errorf("%s: not converged (%d samples, rel %.3g)", name, r.Samples, r.RelHalfWidth)
		}
		if r.CI.Hi < ref.CI.Lo || r.CI.Lo > ref.CI.Hi {
			t.Errorf("%s CI [%.4g, %.4g] disjoint from MC reference [%.4g, %.4g]",
				name, r.CI.Lo, r.CI.Hi, ref.CI.Lo, ref.CI.Hi)
		}
		if r.Samples >= ref.Samples {
			t.Errorf("%s spent %d samples, more than the plain-MC reference's %d", name, r.Samples, ref.Samples)
		}
	}
}

// TestYieldEstimatorDeterminism: seeded estimators are bit-identical
// across repeated runs and across concurrent runs (the CI target runs
// this under -race -cpu 1,4,8).
func TestYieldEstimatorDeterminism(t *testing.T) {
	sigma := 4.0
	contract := Contract{MaxSamples: 1 << 18}
	spec := arcSpec(t, sigma)
	latent := gaussianSpec(sigma)
	for _, name := range []string{"mc", "mnis", "ais"} {
		est, _ := New(name)
		run := func(s Spec) Result {
			r, err := est.Estimate(context.Background(), s, contract)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return r
		}
		golden := run(spec)
		goldenLatent := run(latent)
		const workers = 4
		results := make([]Result, workers)
		latents := make([]Result, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = run(spec)
				latents[i] = run(latent)
			}(i)
		}
		wg.Wait()
		for i := 0; i < workers; i++ {
			if !reflect.DeepEqual(results[i], golden) {
				t.Errorf("%s: concurrent run %d differs from golden", name, i)
			}
			if !reflect.DeepEqual(latents[i], goldenLatent) {
				t.Errorf("%s: concurrent latent run %d differs from golden", name, i)
			}
		}
	}
}

// TestNoFailureRegion: a spec that never fails makes the IS estimators
// return ErrNoFailureRegion (the server's degraded-mode trigger), while
// plain MC answers with a zero-failure bound.
func TestNoFailureRegion(t *testing.T) {
	spec := Spec{Dim: 2, Threshold: 1, Eval: func([]float64) float64 { return 0 }}
	for _, name := range []string{"mnis", "ais"} {
		est, _ := New(name)
		_, err := est.Estimate(context.Background(), spec, Contract{MaxSamples: 1 << 14})
		if !errors.Is(err, ErrNoFailureRegion) {
			t.Errorf("%s: err = %v, want ErrNoFailureRegion", name, err)
		}
	}
	mcEst, _ := New("mc")
	r, err := mcEst.Estimate(context.Background(), spec, Contract{MaxSamples: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged || r.Failures != 0 || r.FailProb != 0 {
		t.Errorf("zero-failure MC: %+v", r)
	}
	if !math.IsInf(r.RelHalfWidth, 1) {
		t.Errorf("zero-failure rel half-width = %v, want +Inf", r.RelHalfWidth)
	}
	// Rule-of-three bound: ~3/n at 95%.
	if hi := r.CI.Hi; hi <= 0 || hi > 5.0/float64(r.Samples) {
		t.Errorf("zero-failure CI upper bound %.3g implausible for n=%d", hi, r.Samples)
	}
}

// TestBudgetAndDeadline: the sample budget is a hard cap, and a dead
// context stops sampling between batches with a partial, non-converged
// result instead of an error.
func TestBudgetAndDeadline(t *testing.T) {
	spec := gaussianSpec(6)
	mcEst, _ := New("mc")
	r, err := mcEst.Estimate(context.Background(), spec, Contract{MaxSamples: 10000, Batch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("10k plain-MC samples cannot close a ±1% contract at 6σ")
	}
	if r.Samples > 10000 {
		t.Errorf("budget overrun: %d samples > 10000", r.Samples)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err = mcEst.Estimate(ctx, spec, Contract{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged || r.Samples != 0 {
		t.Errorf("cancelled-context estimate ran: %+v", r)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	slow := Spec{Dim: 1, Threshold: 4, Eval: func(x []float64) float64 {
		time.Sleep(10 * time.Microsecond)
		return x[0]
	}}
	r, err = mcEst.Estimate(ctx2, slow, Contract{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("deadline-cut estimate claims convergence")
	}
}

// TestProjectedSamples: a converged run projects its own spend; a
// partial run extrapolates 1/ε² scaling.
func TestProjectedSamples(t *testing.T) {
	spec := gaussianSpec(3)
	mcEst, _ := New("mc")
	full, err := mcEst.Estimate(context.Background(), spec, Contract{RelErr: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("mc at 3σ with 5%% contract should converge (got %d samples)", full.Samples)
	}
	if got := ProjectedSamples(full, Contract{RelErr: 0.05}); got != float64(full.Samples) {
		t.Errorf("converged projection %.0f, want actual spend %d", got, full.Samples)
	}
	partial, err := mcEst.Estimate(context.Background(), spec, Contract{MaxSamples: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	proj := ProjectedSamples(partial, Contract{})
	// Analytic requirement: (z/ε)²(1−p)/p ≈ 2.8e7 at 3σ.
	want := math.Pow(zScore(0.95)/0.01, 2) * (1 - stats.StdNormCDF(-3)) / stats.StdNormCDF(-3)
	if proj < want/3 || proj > want*3 {
		t.Errorf("projected MC samples %.3g, want within 3x of analytic %.3g", proj, want)
	}
}

// TestFromDistLatentThreshold: the latent threshold reproduces the
// model's own tail probability (the event is transported, not changed).
func TestFromDistLatentThreshold(t *testing.T) {
	d := stats.Normal{Mu: 5, Sigma: 2}
	for _, k := range []float64{1, 3, 4.5} {
		spec := FromDist(d, 5+k*2)
		if got := stats.StdNormCDF(-spec.Threshold); math.Abs(got-stats.StdNormCDF(-k)) > 1e-9*stats.StdNormCDF(-k) {
			t.Errorf("latent threshold at %gσ transports tail %.6g, want %.6g", k, got, stats.StdNormCDF(-k))
		}
	}
	// Saturated tails clamp instead of producing ±Inf thresholds.
	deep := FromDist(d, 5+12*2)
	if math.IsInf(deep.Threshold, 0) || deep.Threshold > 8.5 {
		t.Errorf("deep-tail latent threshold %v, want clamped finite", deep.Threshold)
	}
}
