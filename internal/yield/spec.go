package yield

import (
	"lvf2/internal/spice"
	"lvf2/internal/stats"
)

// Metric selects which arc output a process-space spec thresholds.
type Metric int

// Arc metrics.
const (
	MetricDelay Metric = iota
	MetricTransition
)

// FromArc builds the full process-space Spec of one timing arc at one
// slew–load point: Eval runs the arc's electrical model over the
// standardised spice.NumParams-dimensional process vector — the same
// space the characterisation samplers draw from — so the estimate is a
// golden-model tail probability, independent of any fitted distribution.
func FromArc(e spice.CellElectrical, c spice.Corner, metric Metric, slewNS, loadPF, threshold float64) Spec {
	return Spec{
		Dim:       spice.NumParams,
		Threshold: threshold,
		Eval: func(x []float64) float64 {
			delay, trans := e.EvalVec(c, x, slewNS, loadPF)
			if metric == MetricTransition {
				return trans
			}
			return delay
		},
	}
}

// FromDist builds the one-dimensional latent-space Spec of a fitted
// delay distribution d. The delay is the monotone transform
// X = Q_d(Φ(Z)) of a standard-normal latent Z, so the failure event
// X > t is exactly Z > Φ⁻¹(F_d(t)): mapping the threshold into latent
// units once lets the estimators pay one float compare per sample
// instead of a quantile inversion per sample — the fitted-model serving
// fast path — while remaining honest sampling estimators of the same
// event. The CDF complement saturates near 8σ (float64 resolution at
// 1−F ≈ 1e-16); deeper tails clamp to that bound.
func FromDist(d stats.Dist, threshold float64) Spec {
	p := d.CDF(threshold)
	const eps = 1e-15
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	zt := stats.StdNormQuantile(p)
	return Spec{
		Dim:       1,
		Threshold: zt,
		Eval:      func(x []float64) float64 { return x[0] },
	}
}
