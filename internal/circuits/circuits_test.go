package circuits

import (
	"math"
	"testing"

	"lvf2/internal/spice"
	"lvf2/internal/stats"
)

func TestFO4DelayPositiveAndStable(t *testing.T) {
	c := spice.TTCorner()
	d1, err1 := FO4Delay(c)
	d2, err2 := FO4Delay(c)
	if err1 != nil || err2 != nil {
		t.Fatalf("FO4Delay: %v / %v", err1, err2)
	}
	if d1 <= 0 {
		t.Fatalf("FO4 delay %v", d1)
	}
	if d1 != d2 {
		t.Error("FO4 delay must be deterministic")
	}
	// Sanity range for the synthetic 22nm-like library: 10–60 ps.
	if d1 < 0.010 || d1 > 0.060 {
		t.Errorf("FO4 delay %v ns outside plausible window", d1)
	}
}

func TestPiWireElmore(t *testing.T) {
	w := PiWire{R: 1, C1: 0.1, C2: 0.2}
	if got := w.ElmoreDelay(0.3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Elmore %v", got)
	}
	if got := w.TotalCap(0.3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("TotalCap %v", got)
	}
}

func TestCarryAdderDepth(t *testing.T) {
	c := spice.TTCorner()
	p := CarryAdder16(c)
	// XOR + 32 carry gates + XOR.
	if len(p.Stages) != 34 {
		t.Fatalf("adder stages %d, want 34", len(p.Stages))
	}
	depth, err := p.FO4Depth(c)
	if err != nil {
		t.Fatalf("FO4Depth: %v", err)
	}
	if depth < 20 || depth > 45 {
		t.Errorf("adder depth %.1f FO4, want ≈30", depth)
	}
}

func TestHTreeDepth(t *testing.T) {
	c := spice.TTCorner()
	p := HTree6(c)
	if len(p.Stages) != 12 {
		t.Fatalf("htree stages %d, want 12 (2 buffers × 6 levels)", len(p.Stages))
	}
	depth, err := p.FO4Depth(c)
	if err != nil {
		t.Fatalf("FO4Depth: %v", err)
	}
	if depth < 70 || depth > 125 {
		t.Errorf("htree depth %.1f FO4, want ≈95", depth)
	}
}

func TestHTreeDeeperThanAdder(t *testing.T) {
	c := spice.TTCorner()
	hd, err1 := HTree6(c).FO4Depth(c)
	ad, err2 := CarryAdder16(c).FO4Depth(c)
	if err1 != nil || err2 != nil {
		t.Fatalf("FO4Depth: %v / %v", err1, err2)
	}
	if hd <= ad {
		t.Error("H-tree must be deeper in FO4 than the adder (95 vs 30)")
	}
}

func TestNominalProfileMonotoneAccumulation(t *testing.T) {
	c := spice.TTCorner()
	p := FO4Chain(8, 0)
	delays, slews := p.NominalProfile(c)
	if len(delays) != 8 || len(slews) != 8 {
		t.Fatal("profile lengths")
	}
	for i, d := range delays {
		if d <= 0 {
			t.Fatalf("stage %d delay %v", i, d)
		}
	}
	// A uniform chain's slew converges: late-stage slews stabilise.
	if math.Abs(slews[7]-slews[6]) > 0.2*slews[6] {
		t.Errorf("slew not settling: %v vs %v", slews[7], slews[6])
	}
}

func TestMCStagesShapeAndBimodality(t *testing.T) {
	c := spice.TTCorner()
	p := FO4Chain(3, 0) // bias 0 ⇒ strongly bimodal stages
	stages := p.MCStages(c, 3000, 42)
	if len(stages) != 3 {
		t.Fatal("stage count")
	}
	for _, s := range stages {
		if len(s.Samples) != 3000 {
			t.Fatal("sample count")
		}
		m := stats.Moments(s.Samples)
		if m.Std() <= 0 {
			t.Fatal("no variation")
		}
		// Mean within 25% of nominal.
		if math.Abs(m.Mean-s.Nominal)/s.Nominal > 0.25 {
			t.Errorf("stage mean %v vs nominal %v", m.Mean, s.Nominal)
		}
		// bias=0 chains sit at the confrontation point: platykurtic.
		if m.Kurtosis > 2.9 {
			t.Errorf("expected bimodal stage, kurtosis %v", m.Kurtosis)
		}
	}
	// Off-confrontation chain is not bimodal.
	far := FO4Chain(1, 4.0).MCStages(c, 3000, 42)
	m := stats.Moments(far[0].Samples)
	if m.Kurtosis < 2.7 {
		t.Errorf("bias=4σ chain should be unimodal, kurtosis %v", m.Kurtosis)
	}
}

func TestMCStagesDeterministic(t *testing.T) {
	c := spice.TTCorner()
	p := FO4Chain(2, 0.5)
	a := p.MCStages(c, 500, 7)
	b := p.MCStages(c, 500, 7)
	for i := range a {
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				t.Fatal("MCStages must be reproducible")
			}
		}
	}
	diff := p.MCStages(c, 500, 8)
	if a[0].Samples[0] == diff[0].Samples[0] {
		t.Error("different seeds should differ")
	}
}

func TestStagesAreIndependent(t *testing.T) {
	// Correlation between two stages' samples should be ≈0 (local
	// variation regime).
	c := spice.TTCorner()
	p := FO4Chain(2, 0.5)
	st := p.MCStages(c, 8000, 9)
	a, b := st[0].Samples, st[1].Samples
	ma := stats.Moments(a)
	mb := stats.Moments(b)
	var cov float64
	for i := range a {
		cov += (a[i] - ma.Mean) * (b[i] - mb.Mean)
	}
	cov /= float64(len(a))
	rho := cov / (ma.Std() * mb.Std())
	if math.Abs(rho) > 0.05 {
		t.Errorf("stage correlation %v, want ~0", rho)
	}
}

func TestWireIncreasesDelay(t *testing.T) {
	c := spice.TTCorner()
	noWire := PathStage{Elec: FO4Chain(1, 2).Stages[0].Elec, LoadPF: 0.004}
	withWire := noWire
	withWire.Wire = &PiWire{R: 0.8, C1: 0.05, C2: 0.05}
	p1 := Path{Stages: []PathStage{noWire}}
	p2 := Path{Stages: []PathStage{withWire}}
	if p2.TotalNominal(c) <= p1.TotalNominal(c) {
		t.Error("wire must add delay")
	}
}
