// Package circuits builds the benchmark structures of the paper's path
// validation (§4.4): a 16-bit ripple-carry adder whose critical path is
// roughly 30 FO4 deep, and a 6-stage H-tree clock spine (two buffers plus
// a Π-model metal wire per stage) roughly 95 FO4 deep. It also provides
// FO4 calibration — the canonical fanout-of-4 inverter delay that
// normalises the x-axis of Fig. 5 — and the Monte-Carlo path
// characterisation that feeds the SSTA engine.
package circuits

import (
	"errors"
	"fmt"
	"math"

	"lvf2/internal/cells"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
)

// ErrMissingCell reports a required cell type absent from the library —
// returned (not panicked) so library-configuration faults surface as
// ordinary errors in the calling pipeline.
var ErrMissingCell = errors.New("circuits: required cell missing from library")

// FO4Delay computes the fanout-of-4 inverter delay of the library at the
// given corner: an INV driving four copies of itself, with the input slew
// iterated to the self-consistent fixed point (the slew a same-stage
// inverter would deliver).
func FO4Delay(corner spice.Corner) (float64, error) {
	inv, ok := cells.CellByName("INV")
	if !ok {
		return 0, fmt.Errorf("%w: INV", ErrMissingCell)
	}
	e := inv.Base
	load := 4 * inv.Base.CapIn
	slew := 0.02
	var delay float64
	for i := 0; i < 20; i++ {
		var trans float64
		delay, trans = e.NominalEval(corner, slew, load)
		if math.Abs(trans-slew) < 1e-9 {
			slew = trans
			break
		}
		slew = trans
	}
	return delay, nil
}

// PiWire is a Π-model RC interconnect segment: total resistance R (kΩ)
// with half the capacitance lumped at each end (C1 near the driver, C2 at
// the receiver). kΩ·pF = ns, so delays fall out in library units.
type PiWire struct {
	R  float64 // kΩ
	C1 float64 // pF at the driver end
	C2 float64 // pF at the receiver end
}

// ElmoreDelay returns the Elmore delay of the wire driving loadPF:
// R·(C2 + load). (C1 charges through the driver, not the wire R.)
func (w PiWire) ElmoreDelay(loadPF float64) float64 {
	return w.R * (w.C2 + loadPF)
}

// TotalCap is the capacitance the driver must charge: C1 + C2 + receiver.
func (w PiWire) TotalCap(loadPF float64) float64 {
	return w.C1 + w.C2 + loadPF
}

// PathStage is one cell (plus optional wire) on a timing path.
type PathStage struct {
	Label string
	Elec  spice.CellElectrical
	Wire  *PiWire // nil for direct gate-to-gate connection
	// LoadPF is the receiver capacitance past the wire (next stage input
	// pins plus side fanout).
	LoadPF float64
}

// Path is a critical path: an ordered stage list.
type Path struct {
	Name   string
	Stages []PathStage
}

// effectiveLoad is the capacitance the stage's driver sees.
func (s PathStage) effectiveLoad() float64 {
	if s.Wire != nil {
		return s.Wire.TotalCap(s.LoadPF)
	}
	return s.LoadPF
}

// wireDelay is the deterministic interconnect delay past the driver.
func (s PathStage) wireDelay() float64 {
	if s.Wire != nil {
		return s.Wire.ElmoreDelay(s.LoadPF)
	}
	return 0
}

// NominalProfile walks the path at the process nominal, propagating slew,
// and returns the per-stage nominal delays (cell + wire) and output slews.
func (p Path) NominalProfile(corner spice.Corner) (delays, slews []float64) {
	delays = make([]float64, len(p.Stages))
	slews = make([]float64, len(p.Stages))
	slew := 0.01 // primary-input transition, ns
	for i, st := range p.Stages {
		d, tr := st.Elec.NominalEval(corner, slew, st.effectiveLoad())
		wd := st.wireDelay()
		delays[i] = d + wd
		// Simplified slew degradation across the wire: the RC tail adds to
		// the transition roughly twice the Elmore delay.
		slew = tr + 2*wd
		slews[i] = slew
	}
	return delays, slews
}

// TotalNominal is the nominal path delay.
func (p Path) TotalNominal(corner spice.Corner) float64 {
	ds, _ := p.NominalProfile(corner)
	var t float64
	for _, d := range ds {
		t += d
	}
	return t
}

// FO4Depth is the path depth in FO4 units.
func (p Path) FO4Depth(corner spice.Corner) (float64, error) {
	fo4, err := FO4Delay(corner)
	if err != nil {
		return 0, err
	}
	return p.TotalNominal(corner) / fo4, nil
}

// MCStages characterises every stage with n Monte-Carlo samples at its
// nominal operating point (slew propagated at nominal; local variation
// independent per stage — the TTGlobal_LocalMC regime of the paper) and
// returns SSTA-ready stages.
func (p Path) MCStages(corner spice.Corner, n int, seed uint64) []ssta.Stage {
	_, slews := p.NominalProfile(corner)
	rng := mc.NewRNG(seed)
	out := make([]ssta.Stage, len(p.Stages))
	slew := 0.01
	for i, st := range p.Stages {
		stageRng := rng.Split()
		res := st.Elec.Characterize(corner, stageRng, n, slew, st.effectiveLoad())
		wd := st.wireDelay()
		samples := res.Delays
		if wd != 0 {
			for k := range samples {
				samples[k] += wd
			}
		}
		nd, _ := st.Elec.NominalEval(corner, slew, st.effectiveLoad())
		out[i] = ssta.Stage{
			Label:   st.Label,
			Samples: samples,
			Nominal: nd + wd,
		}
		slew = slews[i]
	}
	return out
}

// tuneConfrontation sets the arc's DiagOffset so the dual-mechanism bias
// equals biasSigma (in σ units of the mode variable) at the operating
// point — this controls how bimodal the stage's delay distribution is.
func tuneConfrontation(e *spice.CellElectrical, slew, load, biasSigma float64) {
	e.DiagOffset = biasSigma/e.MixSens - (math.Log10(slew/0.03) - math.Log10(load/0.02))
}

// retune makes the confrontation biases self-consistent with the slews
// that actually propagate down the path: it iterates nominal profiling
// and offset adjustment (the nominal delay feeds back into the slew only
// weakly, so three rounds converge).
func retune(p *Path, corner spice.Corner, biases []float64) {
	for iter := 0; iter < 3; iter++ {
		slew := 0.01
		for i := range p.Stages {
			st := &p.Stages[i]
			tuneConfrontation(&st.Elec, slew, st.effectiveLoad(), biases[i])
			_, tr := st.Elec.NominalEval(corner, slew, st.effectiveLoad())
			slew = tr + 2*st.wireDelay()
		}
	}
}

// CarryAdder16 builds the critical path of a 16-bit ripple-carry adder:
// the a0/b0 XOR, the 16-bit carry chain (two NAND2 gates per bit, the
// classical carry decomposition), and the final sum XOR. Loads model a
// fanout of two plus short intra-cell wiring. The resulting depth is
// ≈30 FO4 as in the paper.
func CarryAdder16(corner spice.Corner) Path {
	xor2, _ := cells.CellByName("XOR2")
	nand2, _ := cells.CellByName("NAND2")

	var stages []PathStage
	var biases []float64
	add := func(label string, base spice.CellElectrical, load, bias, modeGap float64) {
		e := base
		if modeGap > 0 {
			e.ModeGap = modeGap
		}
		stages = append(stages, PathStage{Label: label, Elec: e, LoadPF: load})
		biases = append(biases, bias)
	}

	// Input XOR drives the first carry gate pair plus the bit-0 sum and
	// propagate/generate logic — a heavy multi-fanout load that makes this
	// stage several FO4 deep. Its transmission-gate structure has two
	// genuinely competing conduction paths, so the stage is strongly
	// bimodal.
	add("xor_in", xor2.Base, 0.012, 0.0, 0.35)
	// Carry chain: per bit, g = NAND(a,b) then c' = NAND(g, NAND(p,c)).
	// The carry gates carry a pronounced dual-mechanism split (the stacked
	// NAND pull-down against the parallel pull-up), and the bias pattern
	// keeps many stages near the mechanism confrontation — this is what
	// sustains the non-Gaussianity the paper measures at 8 FO4 before the
	// CLT takes over.
	pattern := []float64{0.0, 0.15, -0.15, 0.3, -0.3, 0.5, -0.5, 0.7}
	for bit := 0; bit < 16; bit++ {
		load1 := nand2.Base.CapIn + 0.0012 // internal node + routing
		load2 := 2*nand2.Base.CapIn + 0.0014
		add(fmt.Sprintf("carry%02d_g", bit), nand2.Base, load1, pattern[(2*bit)%len(pattern)], 0.30)
		add(fmt.Sprintf("carry%02d_c", bit), nand2.Base, load2, pattern[(2*bit+1)%len(pattern)], 0.30)
	}
	// Sum XOR at the end of the chain.
	add("xor_sum", xor2.Base, 0.003, 0.3, 0.25)
	p := Path{Name: "carry-adder-16", Stages: stages}
	retune(&p, corner, biases)
	return p
}

// HTree6 builds a 6-stage H-tree clock distribution: each stage is two
// buffers in series driving a Π-model metal wire whose length (and hence
// RC) halves with each level while the fanout doubles. Total depth is
// ≈95 FO4 as in the paper.
func HTree6(corner spice.Corner) Path {
	buf, _ := cells.CellByName("BUFF")
	var stages []PathStage
	var biases []float64
	// Level 0 wires are the longest. R in kΩ, C in pF.
	for level := 0; level < 6; level++ {
		scale := math.Pow(0.74, float64(level))
		wire := &PiWire{
			R:  1.35 * scale,
			C1: 0.13 * scale,
			C2: 0.13 * scale,
		}
		// Receiver: two next-level buffers (the H split).
		recv := 2 * buf.Base.CapIn
		// First buffer drives the second directly; modest bias keeps the
		// buffers mildly bimodal so non-Gaussianity survives longer than
		// in the adder (the paper's observation about slow convergence).
		e1 := buf.Base
		e1.ModeGap = 0.20
		stages = append(stages, PathStage{
			Label:  fmt.Sprintf("htree%v_buf0", level),
			Elec:   e1,
			LoadPF: buf.Base.CapIn + 0.001,
		})
		biases = append(biases, 0.15)
		e2 := buf.Base
		e2.Drive *= 2.2   // the wire driver is upsized
		e2.ModeGap = 0.34 // the dominant wire drivers split strongly:
		// clock buffers drive huge loads through two very different
		// conduction paths, which is what keeps the H-tree's convergence
		// to Gaussian slow (§4.4)
		stages = append(stages, PathStage{
			Label:  fmt.Sprintf("htree%v_buf1", level),
			Elec:   e2,
			Wire:   wire,
			LoadPF: recv,
		})
		biases = append(biases, 0.1)
	}
	p := Path{Name: "htree-6", Stages: stages}
	retune(&p, corner, biases)
	return p
}

// FO4Chain builds a uniform chain of n FO4-loaded inverters with the given
// mechanism bias — the controlled workload for convergence studies.
func FO4Chain(n int, biasSigma float64) Path {
	inv, _ := cells.CellByName("INV")
	load := 4 * inv.Base.CapIn
	stages := make([]PathStage, n)
	biases := make([]float64, n)
	for i := range stages {
		e := inv.Base
		e.ModeGap = 0.25
		stages[i] = PathStage{
			Label:  fmt.Sprintf("inv%02d", i),
			Elec:   e,
			LoadPF: load,
		}
		biases[i] = biasSigma
	}
	p := Path{Name: fmt.Sprintf("fo4-chain-%d", n), Stages: stages}
	retune(&p, spice.TTCorner(), biases)
	return p
}
