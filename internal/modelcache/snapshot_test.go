package modelcache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"path/filepath"
	"testing"

	"lvf2/internal/core"
	"lvf2/internal/fit"
)

func snapEntries(n int) []SnapshotEntry {
	out := make([]SnapshotEntry, n)
	for i := range out {
		out[i] = SnapshotEntry{
			Key: ModelKey{
				LibHash: "hash", Cell: fmt.Sprintf("C%d", i), OutputPin: "ZN",
				RelatedPin: "A", Base: "cell_rise", Slew: 0.01 * float64(i+1),
				Load: 0.004, Kind: fit.ModelLVF2,
			},
			Model: core.Model{
				Lambda: 0.25,
				Theta1: core.Theta{Mean: 0.1 + float64(i), Sigma: 0.004, Skew: 0.5},
				Theta2: core.Theta{Mean: 0.13 + float64(i), Sigma: 0.006, Skew: 0.2},
			},
		}
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := snapEntries(5)
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("entry %d key = %+v, want %+v", i, got[i].Key, want[i].Key)
		}
		if !modelsBitIdentical(got[i].Model, want[i].Model) {
			t.Fatalf("entry %d model not bit-identical", i)
		}
	}
	// An empty snapshot is valid too (a cold cache saves cleanly).
	if got, err := DecodeSnapshot(EncodeSnapshot(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot: %v (%d entries)", err, len(got))
	}
}

// TestSnapshotRestorePreservesRecency proves a save/restore cycle keeps
// the LRU eviction order: the oldest pre-snapshot entry is still the
// first evicted after restore.
func TestSnapshotRestorePreservesRecency(t *testing.T) {
	src := New(Options{MaxModels: 8})
	for i := 0; i < 4; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 becomes the LRU entry.
	if _, err := src.Model(key(0), nil); err != nil {
		t.Fatal(err)
	}

	dst := New(Options{MaxModels: 4})
	n, err := dst.RestoreModels(src.SnapshotModels())
	if err != nil || n != 4 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	// One insertion over capacity must evict key 1, the restored LRU tail.
	if _, err := dst.Model(key(9), func() (core.Model, error) { return constModel(9), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Peek(key(1)); ok {
		t.Fatal("key 1 survived; restore did not preserve recency order")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := dst.Peek(key(i)); !ok {
			t.Fatalf("key %d lost after restore+insert", i)
		}
	}
}

// TestSnapshotCorruptionTaxonomy maps every malformation class to
// ErrBadSnapshot and proves none of them mutate the restoring cache.
func TestSnapshotCorruptionTaxonomy(t *testing.T) {
	good := EncodeSnapshot(snapEntries(3))
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:10],
		"magic":     mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"version":   reseal(mut(func(b []byte) []byte { b[8] = 99; return b })),
		"truncated": good[:len(good)-40],
		"bitflip":   mut(func(b []byte) []byte { b[20] ^= 0x40; return b }),
		"count":     reseal(mut(func(b []byte) []byte { b[12] = 0xFF; b[13] = 0xFF; return b })),
		"nan_model": reseal(corruptFirstModelField(good, math.NaN())),
		"bad_kind":  EncodeSnapshot([]SnapshotEntry{{Key: ModelKey{LibHash: "h", Kind: 99}, Model: constModel(1)}}),
		"no_hash":   EncodeSnapshot([]SnapshotEntry{{Key: ModelKey{Kind: fit.ModelLVF}, Model: constModel(1)}}),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			c := New(Options{})
			n, err := c.RestoreModels(b)
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
			if n != 0 || c.ModelStats().Entries != 0 {
				t.Fatalf("corrupt restore mutated the cache: n=%d entries=%d", n, c.ModelStats().Entries)
			}
		})
	}
}

// reseal recomputes the checksum trailer so a test reaches the
// validation layer beneath it.
func reseal(b []byte) []byte {
	payload := b[:len(b)-sha256.Size]
	sum := sha256.Sum256(payload)
	return append(append([]byte(nil), payload...), sum[:]...)
}

// corruptFirstModelField rewrites the first entry's λ field in place
// (the last 7*8 bytes of the first entry are the model parameters).
func corruptFirstModelField(good []byte, v float64) []byte {
	entries, err := DecodeSnapshot(good)
	if err != nil {
		panic(err)
	}
	entries[0].Model.Lambda = v
	return EncodeSnapshot(entries)
}

func TestSaveRestoreSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.snap")
	fsys := OSFS{}

	src := New(Options{})
	for i := 0; i < 3; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SaveSnapshot(fsys, path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings after a successful atomic save.
	if m, _ := filepath.Glob(path + ".tmp*"); len(m) != 0 {
		t.Fatalf("temp files left behind: %v", m)
	}

	dst := New(Options{})
	n, err := dst.RestoreSnapshot(fsys, path)
	if err != nil || n != 3 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		m, ok := dst.Peek(key(i))
		if !ok || m.Theta1.Mean != float64(i) {
			t.Fatalf("key %d: ok=%v m=%+v", i, ok, m)
		}
	}
	// A missing file is a not-exist error, distinct from corruption.
	if _, err := dst.RestoreSnapshot(fsys, filepath.Join(dir, "absent.snap")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
}

// FuzzSnapshotDecode proves arbitrary bytes never panic the restore
// path and always yield either valid entries or a typed ErrBadSnapshot.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(EncodeSnapshot(nil))
	f.Add(EncodeSnapshot(snapEntries(2)))
	f.Add(reseal(corruptFirstModelField(EncodeSnapshot(snapEntries(1)), math.Inf(1))))
	f.Fuzz(func(t *testing.T, b []byte) {
		entries, err := DecodeSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		// Accepted input: every entry must satisfy the serving-side
		// invariants, and re-encoding must be stable.
		for _, e := range entries {
			if err := validateEntry(e); err != nil {
				t.Fatalf("accepted invalid entry %+v: %v", e, err)
			}
		}
		again, err := DecodeSnapshot(EncodeSnapshot(entries))
		if err != nil || len(again) != len(entries) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// TestSnapshotRestoreBitIdenticalToFresh extends the cache's core
// property test across persistence: a model that went through
// snapshot→restore is bit-for-bit the model a fresh fit produces.
func TestSnapshotRestoreBitIdenticalToFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("fits several models")
	}
	kinds := []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLVF, fit.ModelGaussian}
	src := New(Options{})
	xs := bimodalSamples(t, 1200, 77)
	keys := make([]ModelKey, 0, len(kinds))
	for _, kind := range kinds {
		kind := kind
		k := ModelKey{LibHash: "snap", Cell: "X", Base: "cell_rise", Slew: 0.01, Load: 0.02, Kind: kind}
		keys = append(keys, k)
		if _, err := src.Model(k, func() (core.Model, error) {
			m, _, err := core.FitKindRobust(kind, xs, fit.RobustOptions{})
			return m, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	dst := New(Options{})
	if n, err := dst.RestoreModels(src.SnapshotModels()); err != nil || n != len(keys) {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	for i, k := range keys {
		restored, ok := dst.Peek(k)
		if !ok {
			t.Fatalf("kind %v missing after restore", kinds[i])
		}
		fresh, _, err := core.FitKindRobust(kinds[i], xs, fit.RobustOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !modelsBitIdentical(restored, fresh) {
			t.Fatalf("kind %v: restored model differs from fresh fit:\n  %+v\n  %+v", kinds[i], restored, fresh)
		}
	}
}
