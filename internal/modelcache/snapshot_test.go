package modelcache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"path/filepath"
	"testing"

	"lvf2/internal/core"
	"lvf2/internal/fit"
)

func snapEntries(n int) []SnapshotEntry {
	out := make([]SnapshotEntry, n)
	for i := range out {
		out[i] = SnapshotEntry{
			Key: ModelKey{
				LibHash: "hash", Cell: fmt.Sprintf("C%d", i), OutputPin: "ZN",
				RelatedPin: "A", Base: "cell_rise", Slew: 0.01 * float64(i+1),
				Load: 0.004, Kind: fit.ModelLVF2,
			},
			Model: core.Model{
				Lambda: 0.25,
				Theta1: core.Theta{Mean: 0.1 + float64(i), Sigma: 0.004, Skew: 0.5},
				Theta2: core.Theta{Mean: 0.13 + float64(i), Sigma: 0.006, Skew: 0.2},
			},
		}
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := snapEntries(5)
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("entry %d key = %+v, want %+v", i, got[i].Key, want[i].Key)
		}
		if !modelsBitIdentical(got[i].Model, want[i].Model) {
			t.Fatalf("entry %d model not bit-identical", i)
		}
	}
	// An empty snapshot is valid too (a cold cache saves cleanly).
	if got, err := DecodeSnapshot(EncodeSnapshot(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot: %v (%d entries)", err, len(got))
	}
}

// TestSnapshotRestorePreservesRecency proves a save/restore cycle keeps
// the LRU eviction order: the oldest pre-snapshot entry is still the
// first evicted after restore.
func TestSnapshotRestorePreservesRecency(t *testing.T) {
	src := New(Options{MaxModels: 8})
	for i := 0; i < 4; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 becomes the LRU entry.
	if _, err := src.Model(key(0), nil); err != nil {
		t.Fatal(err)
	}

	dst := New(Options{MaxModels: 4})
	n, err := dst.RestoreModels(src.SnapshotModels())
	if err != nil || n != 4 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	// One insertion over capacity must evict key 1, the restored LRU tail.
	if _, err := dst.Model(key(9), func() (core.Model, error) { return constModel(9), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Peek(key(1)); ok {
		t.Fatal("key 1 survived; restore did not preserve recency order")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := dst.Peek(key(i)); !ok {
			t.Fatalf("key %d lost after restore+insert", i)
		}
	}
}

// TestSnapshotCorruptionTaxonomy maps every malformation class to
// ErrBadSnapshot and proves none of them mutate the restoring cache.
func TestSnapshotCorruptionTaxonomy(t *testing.T) {
	good := EncodeSnapshot(snapEntries(3))
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:10],
		"magic":     mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"version":   reseal(mut(func(b []byte) []byte { b[8] = 99; return b })),
		"truncated": good[:len(good)-40],
		"bitflip":   mut(func(b []byte) []byte { b[20] ^= 0x40; return b }),
		"count":     reseal(mut(func(b []byte) []byte { b[12] = 0xFF; b[13] = 0xFF; return b })),
		"nan_model": reseal(corruptFirstModelField(good, math.NaN())),
		"bad_kind":  EncodeSnapshot([]SnapshotEntry{{Key: ModelKey{LibHash: "h", Kind: 99}, Model: constModel(1)}}),
		"no_hash":   EncodeSnapshot([]SnapshotEntry{{Key: ModelKey{Kind: fit.ModelLVF}, Model: constModel(1)}}),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			c := New(Options{})
			n, err := c.RestoreModels(b)
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
			if n != 0 || c.ModelStats().Entries != 0 {
				t.Fatalf("corrupt restore mutated the cache: n=%d entries=%d", n, c.ModelStats().Entries)
			}
		})
	}
}

// reseal recomputes the checksum trailer so a test reaches the
// validation layer beneath it.
func reseal(b []byte) []byte {
	payload := b[:len(b)-sha256.Size]
	sum := sha256.Sum256(payload)
	return append(append([]byte(nil), payload...), sum[:]...)
}

// corruptFirstModelField rewrites the first entry's λ field in place
// (the last 7*8 bytes of the first entry are the model parameters).
func corruptFirstModelField(good []byte, v float64) []byte {
	entries, err := DecodeSnapshot(good)
	if err != nil {
		panic(err)
	}
	entries[0].Model.Lambda = v
	return EncodeSnapshot(entries)
}

func TestSaveRestoreSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.snap")
	fsys := OSFS{}

	src := New(Options{})
	for i := 0; i < 3; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SaveSnapshot(fsys, path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings after a successful atomic save.
	if m, _ := filepath.Glob(path + ".tmp*"); len(m) != 0 {
		t.Fatalf("temp files left behind: %v", m)
	}

	dst := New(Options{})
	n, err := dst.RestoreSnapshot(fsys, path)
	if err != nil || n != 3 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		m, ok := dst.Peek(key(i))
		if !ok || m.Theta1.Mean != float64(i) {
			t.Fatalf("key %d: ok=%v m=%+v", i, ok, m)
		}
	}
	// A missing file is a not-exist error, distinct from corruption.
	if _, err := dst.RestoreSnapshot(fsys, filepath.Join(dir, "absent.snap")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v, want fs.ErrNotExist", err)
	}
}

// FuzzSnapshotDecode proves arbitrary bytes never panic the restore
// path and always yield either valid entries or a typed ErrBadSnapshot.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(EncodeSnapshot(nil))
	f.Add(EncodeSnapshot(snapEntries(2)))
	f.Add(reseal(corruptFirstModelField(EncodeSnapshot(snapEntries(1)), math.Inf(1))))
	f.Fuzz(func(t *testing.T, b []byte) {
		entries, err := DecodeSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		// Accepted input: every entry must satisfy the serving-side
		// invariants, and re-encoding must be stable.
		for _, e := range entries {
			if err := validateEntry(e); err != nil {
				t.Fatalf("accepted invalid entry %+v: %v", e, err)
			}
		}
		again, err := DecodeSnapshot(EncodeSnapshot(entries))
		if err != nil || len(again) != len(entries) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// TestSnapshotFilteredExport is the property test behind peer
// warm-seeding: export∘import of an owner-filtered slice is
// bit-identical to the source entries, contains nothing outside the
// filter, and never resurrects keys the source cache already evicted.
func TestSnapshotFilteredExport(t *testing.T) {
	src := New(Options{MaxModels: 8})
	// Insert 12 keys into an 8-entry cache: keys 0..3 are evicted.
	for i := 0; i < 12; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.ModelStats().Evictions; got != 4 {
		t.Fatalf("setup: %d evictions, want 4", got)
	}
	// "Owned" keys are the even ones — the shape of a ring-owner filter.
	owned := func(k ModelKey) bool { return int(k.Slew)%2 == 0 }

	slice := src.SnapshotModelsFiltered(owned)
	entries, err := DecodeSnapshot(slice)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 6, 8, 10} // surviving ∩ owned, oldest→newest
	if len(entries) != len(want) {
		t.Fatalf("filtered export has %d entries, want %d", len(entries), len(want))
	}
	for i, idx := range want {
		if entries[i].Key != key(idx) {
			t.Fatalf("entry %d key = %+v, want key(%d)", i, entries[i].Key, idx)
		}
		srcModel, ok := src.Peek(key(idx))
		if !ok || !modelsBitIdentical(entries[i].Model, srcModel) {
			t.Fatalf("entry %d model not bit-identical to source", i)
		}
	}

	dst := New(Options{})
	if n, err := dst.RestoreModels(slice); err != nil || n != len(want) {
		t.Fatalf("import: n=%d err=%v", n, err)
	}
	for i := 0; i < 12; i++ {
		m, ok := dst.Peek(key(i))
		wantPresent := i >= 4 && i%2 == 0
		if ok != wantPresent {
			t.Fatalf("key %d present=%v after import, want %v (evicted or unowned keys must not resurrect)", i, ok, wantPresent)
		}
		if ok && !modelsBitIdentical(m, constModel(float64(i))) {
			t.Fatalf("key %d model changed across export∘import", i)
		}
	}

	// A nil filter is the full snapshot.
	full, err := DecodeSnapshot(src.SnapshotModelsFiltered(nil))
	if err != nil || len(full) != 8 {
		t.Fatalf("nil filter: %d entries err=%v, want all 8 survivors", len(full), err)
	}
	// A filter matching nothing yields a valid empty snapshot.
	empty, err := DecodeSnapshot(src.SnapshotModelsFiltered(func(ModelKey) bool { return false }))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty filter: %d entries err=%v", len(empty), err)
	}
}

// TestPeek pins Peek's contract: no fit, no hit/miss counting, but a
// recency bump — the degraded path and the forwarding owner-check both
// rely on peeks being statistically invisible yet LRU-visible.
func TestPeek(t *testing.T) {
	c := New(Options{MaxModels: 2})
	if _, ok := c.Peek(key(0)); ok {
		t.Fatal("Peek on an empty cache reported a hit")
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := c.ModelStats()
	if m, ok := c.Peek(key(0)); !ok || !modelsBitIdentical(m, constModel(0)) {
		t.Fatalf("Peek(key 0) = %+v, %v", m, ok)
	}
	if _, ok := c.Peek(key(7)); ok {
		t.Fatal("Peek reported a hit for an absent key")
	}
	after := c.ModelStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Peek moved counters: hits %d→%d misses %d→%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
	// The peek of key 0 made key 1 the LRU entry: one insert evicts it.
	if _, err := c.Model(key(2), func() (core.Model, error) { return constModel(2), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek(key(1)); ok {
		t.Fatal("key 1 survived; Peek did not bump recency of key 0")
	}
	if _, ok := c.Peek(key(0)); !ok {
		t.Fatal("key 0 evicted despite its Peek recency bump")
	}
}

// TestRingKeyCanonical proves RingKey is injective across field
// boundaries: shuffling bytes between adjacent name fields, or between
// a name and the operating point, must change the encoding.
func TestRingKeyCanonical(t *testing.T) {
	base := key(1)
	variants := []ModelKey{}
	{
		k := base
		k.Cell, k.OutputPin = "INVZ", "N" // move a byte across the field boundary
		variants = append(variants, k)
	}
	{
		k := base
		k.Slew, k.Load = base.Load, base.Slew // swap the operating point
		variants = append(variants, k)
	}
	{
		k := base
		k.Kind = fit.ModelGaussian
		variants = append(variants, k)
	}
	{
		k := base
		k.LibHash = "lib2"
		variants = append(variants, k)
	}
	seen := map[string]ModelKey{base.RingKey(): base}
	for _, v := range variants {
		rk := v.RingKey()
		if prev, dup := seen[rk]; dup {
			t.Fatalf("RingKey collision between %+v and %+v", prev, v)
		}
		seen[rk] = v
	}
	if base.RingKey() != key(1).RingKey() {
		t.Fatal("RingKey is not deterministic")
	}
}

// TestSnapshotRestoreBitIdenticalToFresh extends the cache's core
// property test across persistence: a model that went through
// snapshot→restore is bit-for-bit the model a fresh fit produces.
func TestSnapshotRestoreBitIdenticalToFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("fits several models")
	}
	kinds := []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLVF, fit.ModelGaussian}
	src := New(Options{})
	xs := bimodalSamples(t, 1200, 77)
	keys := make([]ModelKey, 0, len(kinds))
	for _, kind := range kinds {
		kind := kind
		k := ModelKey{LibHash: "snap", Cell: "X", Base: "cell_rise", Slew: 0.01, Load: 0.02, Kind: kind}
		keys = append(keys, k)
		if _, err := src.Model(k, func() (core.Model, error) {
			m, _, err := core.FitKindRobust(kind, xs, fit.RobustOptions{})
			return m, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	dst := New(Options{})
	if n, err := dst.RestoreModels(src.SnapshotModels()); err != nil || n != len(keys) {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	for i, k := range keys {
		restored, ok := dst.Peek(k)
		if !ok {
			t.Fatalf("kind %v missing after restore", kinds[i])
		}
		fresh, _, err := core.FitKindRobust(kinds[i], xs, fit.RobustOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !modelsBitIdentical(restored, fresh) {
			t.Fatalf("kind %v: restored model differs from fresh fit:\n  %+v\n  %+v", kinds[i], restored, fresh)
		}
	}
}

// TestSnapshotCappedNewestFirst pins the ?max_bytes= satellite: a capped
// export keeps the newest entries, drops the oldest first, reports
// truncation, and always yields a decodable snapshot.
func TestSnapshotCappedNewestFirst(t *testing.T) {
	src := New(Options{MaxModels: 16})
	for i := 0; i < 6; i++ {
		if _, err := src.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	full, truncated := src.SnapshotModelsCapped(nil, 0)
	if truncated {
		t.Fatal("uncapped export reported truncation")
	}
	entrySize := encodedEntrySize(SnapshotEntry{Key: key(0)})
	if want := snapshotOverhead + 6*entrySize; len(full) != want {
		t.Fatalf("full export is %d bytes, want %d", len(full), want)
	}

	// Budget for exactly two entries: the two newest survive.
	capped, truncated := src.SnapshotModelsCapped(nil, snapshotOverhead+2*entrySize)
	if !truncated {
		t.Fatal("capped export did not report truncation")
	}
	entries, err := DecodeSnapshot(capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != key(4) || entries[1].Key != key(5) {
		t.Fatalf("capped export kept wrong entries: %+v", entries)
	}

	// One byte short of two entries keeps only the newest.
	capped, _ = src.SnapshotModelsCapped(nil, snapshotOverhead+2*entrySize-1)
	if entries, err = DecodeSnapshot(capped); err != nil || len(entries) != 1 || entries[0].Key != key(5) {
		t.Fatalf("tight cap: %d entries err=%v", len(entries), err)
	}

	// A cap below the envelope still emits a valid empty snapshot.
	capped, truncated = src.SnapshotModelsCapped(nil, 1)
	if !truncated {
		t.Fatal("sub-envelope cap did not report truncation")
	}
	if entries, err = DecodeSnapshot(capped); err != nil || len(entries) != 0 {
		t.Fatalf("sub-envelope cap: %d entries err=%v", len(entries), err)
	}

	// A generous cap equals the uncapped export bit for bit.
	capped, truncated = src.SnapshotModelsCapped(nil, len(full))
	if truncated || string(capped) != string(full) {
		t.Fatal("cap == full size must not truncate")
	}

	// The cap composes with an owner filter: budget counts kept entries only.
	even := func(k ModelKey) bool { return int(k.Slew)%2 == 0 }
	capped, truncated = src.SnapshotModelsCapped(even, snapshotOverhead+2*entrySize)
	if !truncated {
		t.Fatal("filtered capped export did not report truncation")
	}
	if entries, err = DecodeSnapshot(capped); err != nil || len(entries) != 2 ||
		entries[0].Key != key(2) || entries[1].Key != key(4) {
		t.Fatalf("filtered capped export kept wrong entries: %+v (err=%v)", entries, err)
	}
}

// TestDigestModels pins the anti-entropy comparison: equal model sets
// agree on (count, digest) regardless of insertion order; any missing
// key or differing model bits changes the digest; the filter scopes it.
func TestDigestModels(t *testing.T) {
	a, b := New(Options{}), New(Options{})
	for i := 0; i < 5; i++ {
		if _, err := a.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i >= 0; i-- { // reverse order: digest must not care
		if _, err := b.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	an, ad := a.DigestModels(nil)
	bn, bd := b.DigestModels(nil)
	if an != 5 || bn != 5 || ad != bd {
		t.Fatalf("equal sets disagree: (%d,%x) vs (%d,%x)", an, ad, bn, bd)
	}

	// A missing key changes the digest.
	c := New(Options{})
	for i := 0; i < 4; i++ {
		if _, err := c.Model(key(i), func() (core.Model, error) { return constModel(float64(i)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if cn, cd := c.DigestModels(nil); cn == an && cd == ad {
		t.Fatal("subset produced the same (count, digest)")
	}

	// Same keys, one model's bits changed: digest must differ.
	d := New(Options{})
	for i := 0; i < 5; i++ {
		mean := float64(i)
		if i == 2 {
			mean = math.Nextafter(mean, 3)
		}
		if _, err := d.Model(key(i), func() (core.Model, error) { return constModel(mean), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if dn, dd := d.DigestModels(nil); dn != 5 || dd == ad {
		t.Fatalf("one-ulp model change not visible in digest (n=%d)", dn)
	}

	// The keep filter scopes the digest to owned keys.
	even := func(k ModelKey) bool { return int(k.Slew)%2 == 0 }
	en, ed := a.DigestModels(even)
	if en != 3 {
		t.Fatalf("filtered count = %d, want 3", en)
	}
	if fn, fd := b.DigestModels(even); fn != en || fd != ed {
		t.Fatal("filtered digests of equal sets disagree")
	}

	// Empty cache and nothing-matches filter are (0, 0).
	if n, dg := New(Options{}).DigestModels(nil); n != 0 || dg != 0 {
		t.Fatalf("empty cache digest = (%d, %x)", n, dg)
	}
	if n, dg := a.DigestModels(func(ModelKey) bool { return false }); n != 0 || dg != 0 {
		t.Fatalf("empty filter digest = (%d, %x)", n, dg)
	}
}
