// Snapshot persistence for the fitted-model LRU. A restart of the
// daemon used to discard every fitted model — a ~147× warm/cold latency
// gap per BENCH_server.json — so the cache can serialise its model LRU
// to a versioned, checksummed binary snapshot and restore it on boot.
//
// Format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "LVF2SNAP"
//	8       4     format version (currently 1)
//	12      4     entry count
//	16      ...   entries, oldest → newest recency order
//	end-32  32    SHA-256 of every preceding byte
//
// Each entry is the full ModelKey (five length-prefixed strings, the
// slew/load operating point and the model kind) followed by the seven
// core.Model parameters as raw IEEE-754 bits, so a restored model is
// bit-identical to the one snapshotted — the same property the cache
// already guarantees between cached and fresh fits.
//
// Restore is all-or-nothing and never trusts the bytes: a wrong magic,
// unsupported version, truncation, checksum mismatch or any entry that
// fails model validation yields a typed error (errors.Is ErrBadSnapshot)
// and leaves the cache untouched, so a corrupt snapshot degrades to a
// cold start instead of poisoning the serving path.
package modelcache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"lvf2/internal/core"
	"lvf2/internal/fit"
)

// snapshotMagic identifies a model-cache snapshot file.
const snapshotMagic = "LVF2SNAP"

// SnapshotVersion is the current snapshot format version. Decoders
// reject any other version: the format carries fitted parameters, and a
// silent cross-version reinterpretation would serve wrong timing.
const SnapshotVersion = 1

// maxSnapshotString bounds each encoded key string so a hostile length
// prefix cannot drive a huge allocation before the checksum is verified.
const maxSnapshotString = 1 << 16

// ErrBadSnapshot is the base error of every snapshot decode failure.
// Use errors.Is to distinguish "snapshot invalid, boot cold" from I/O
// errors such as a missing file.
var ErrBadSnapshot = errors.New("modelcache: invalid snapshot")

func badSnapshot(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// SnapshotEntry is one decoded (key, model) pair.
type SnapshotEntry struct {
	Key   ModelKey
	Model core.Model
}

// SnapshotModels serialises the model LRU in oldest→newest recency
// order (so a restore reproduces the eviction order) and appends the
// checksum trailer. Libraries are not snapshotted: their sources live on
// disk and re-parse on demand.
func (c *Cache) SnapshotModels() []byte {
	return c.SnapshotModelsFiltered(nil)
}

// SnapshotModelsFiltered serialises the subset of the model LRU whose
// keys satisfy keep (nil keeps everything), preserving oldest→newest
// recency order among the kept entries. The replicated serving layer
// uses it to export exactly the slice of warm state a restarting peer
// owns under the consistent-hash ring, without shipping the rest of the
// cache over the wire.
func (c *Cache) SnapshotModelsFiltered(keep func(ModelKey) bool) []byte {
	b, _ := c.SnapshotModelsCapped(keep, 0)
	return b
}

// SnapshotModelsCapped is SnapshotModelsFiltered with a byte budget:
// when the full export would exceed maxBytes (0 = unlimited), the
// oldest entries are dropped first so the newest — the ones most likely
// to be re-queried — survive the cut. The second result reports whether
// anything was dropped. The 48-byte header+trailer envelope is always
// emitted, so the effective floor for maxBytes is 48.
func (c *Cache) SnapshotModelsCapped(keep func(ModelKey) bool, maxBytes int) ([]byte, bool) {
	c.mu.Lock()
	entries := make([]SnapshotEntry, 0, c.models.len())
	for el := c.models.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry[ModelKey, core.Model])
		if keep != nil && !keep(e.key) {
			continue
		}
		entries = append(entries, SnapshotEntry{Key: e.key, Model: e.val})
	}
	c.mu.Unlock()
	truncated := false
	if maxBytes > 0 {
		budget := maxBytes - snapshotOverhead
		// entries is oldest→newest; walk from the newest end accumulating
		// encoded sizes and cut off the oldest prefix that no longer fits.
		total, cut := 0, len(entries)
		for i := len(entries) - 1; i >= 0; i-- {
			sz := encodedEntrySize(entries[i])
			if total+sz > budget {
				break
			}
			total += sz
			cut = i
		}
		if cut > 0 {
			truncated = true
			entries = entries[cut:]
		}
	}
	return EncodeSnapshot(entries), truncated
}

// snapshotOverhead is the byte cost of the snapshot envelope: the
// 16-byte header plus the SHA-256 trailer.
const snapshotOverhead = 16 + sha256.Size

// encodedEntrySize returns the exact wire size of one entry.
func encodedEntrySize(e SnapshotEntry) int {
	return 5*4 + len(e.Key.LibHash) + len(e.Key.Cell) + len(e.Key.OutputPin) +
		len(e.Key.RelatedPin) + len(e.Key.Base) + 2*8 + 4 + 7*8
}

// EncodeSnapshot renders entries in the snapshot wire format.
func EncodeSnapshot(entries []SnapshotEntry) []byte {
	b := make([]byte, 0, 16+len(entries)*160)
	b = append(b, snapshotMagic...)
	b = binary.LittleEndian.AppendUint32(b, SnapshotVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendSnapshotEntry(b, e)
	}
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

func appendSnapshotEntry(b []byte, e SnapshotEntry) []byte {
	for _, s := range [...]string{e.Key.LibHash, e.Key.Cell, e.Key.OutputPin, e.Key.RelatedPin, e.Key.Base} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Key.Slew))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Key.Load))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Key.Kind))
	for _, f := range modelFields(e.Model) {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// DigestModels returns how many cached models satisfy keep (nil keeps
// everything) and an order-independent digest over their full
// (key, model-bits) wire encoding: the XOR of each entry's FNV-64a
// hash. Two caches hold bit-identical model sets for the filtered keys
// iff count and digest agree — the cheap comparison the anti-entropy
// loop exchanges before deciding to ship a snapshot slice.
func (c *Cache) DigestModels(keep func(ModelKey) bool) (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		n      int
		digest uint64
		buf    []byte
	)
	for el := c.models.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry[ModelKey, core.Model])
		if keep != nil && !keep(e.key) {
			continue
		}
		buf = appendSnapshotEntry(buf[:0], SnapshotEntry{Key: e.key, Model: e.val})
		h := fnv.New64a()
		h.Write(buf)
		digest ^= h.Sum64()
		n++
	}
	return n, digest
}

func modelFields(m core.Model) [7]float64 {
	return [7]float64{
		m.Lambda,
		m.Theta1.Mean, m.Theta1.Sigma, m.Theta1.Skew,
		m.Theta2.Mean, m.Theta2.Sigma, m.Theta2.Skew,
	}
}

// DecodeSnapshot parses and validates a snapshot. Arbitrary input bytes
// never panic: every malformation maps to an ErrBadSnapshot-wrapped
// error (FuzzSnapshotDecode pins this).
func DecodeSnapshot(b []byte) ([]SnapshotEntry, error) {
	const headerLen = len(snapshotMagic) + 4 + 4
	if len(b) < headerLen+sha256.Size {
		return nil, badSnapshot("truncated: %d bytes", len(b))
	}
	if string(b[:len(snapshotMagic)]) != snapshotMagic {
		return nil, badSnapshot("bad magic %q", b[:len(snapshotMagic)])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != SnapshotVersion {
		return nil, badSnapshot("unsupported version %d (this build reads %d)", v, SnapshotVersion)
	}
	payload, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(payload); string(sum[:]) != string(trailer) {
		return nil, badSnapshot("checksum mismatch")
	}
	count := binary.LittleEndian.Uint32(b[12:])
	r := &byteReader{buf: payload[headerLen:]}
	// Every entry occupies ≥ the fixed field bytes, so an absurd count is
	// rejected before any allocation proportional to it.
	const minEntry = 5*4 + 2*8 + 4 + 7*8
	if uint64(count)*minEntry > uint64(len(r.buf)) {
		return nil, badSnapshot("entry count %d exceeds payload", count)
	}
	entries := make([]SnapshotEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		e, err := decodeEntry(r)
		if err != nil {
			return nil, fmt.Errorf("%w (entry %d)", err, i)
		}
		entries = append(entries, e)
	}
	if r.rem() != 0 {
		return nil, badSnapshot("%d trailing payload bytes after %d entries", r.rem(), count)
	}
	return entries, nil
}

func decodeEntry(r *byteReader) (SnapshotEntry, error) {
	var e SnapshotEntry
	for _, dst := range [...]*string{&e.Key.LibHash, &e.Key.Cell, &e.Key.OutputPin, &e.Key.RelatedPin, &e.Key.Base} {
		s, err := r.string()
		if err != nil {
			return e, err
		}
		*dst = s
	}
	var err error
	if e.Key.Slew, err = r.float64(); err != nil {
		return e, err
	}
	if e.Key.Load, err = r.float64(); err != nil {
		return e, err
	}
	kind, err := r.uint32()
	if err != nil {
		return e, err
	}
	e.Key.Kind = fit.Model(kind)
	var fields [7]float64
	for i := range fields {
		if fields[i], err = r.float64(); err != nil {
			return e, err
		}
	}
	e.Model = core.Model{
		Lambda: fields[0],
		Theta1: core.Theta{Mean: fields[1], Sigma: fields[2], Skew: fields[3]},
		Theta2: core.Theta{Mean: fields[4], Sigma: fields[5], Skew: fields[6]},
	}
	return e, validateEntry(e)
}

// validateEntry vets one decoded entry the way the serving path would:
// a known model kind, a finite operating point and a Validate-clean,
// finite model. The checksum catches corruption; this catches a
// well-checksummed snapshot written by a buggy or hostile producer.
func validateEntry(e SnapshotEntry) error {
	if e.Key.Kind < fit.ModelLVF || e.Key.Kind > fit.ModelGaussian {
		return badSnapshot("unknown model kind %d", e.Key.Kind)
	}
	if e.Key.LibHash == "" {
		return badSnapshot("empty library hash")
	}
	if !isFinite(e.Key.Slew) || !isFinite(e.Key.Load) {
		return badSnapshot("non-finite operating point (%v, %v)", e.Key.Slew, e.Key.Load)
	}
	for _, f := range modelFields(e.Model) {
		if !isFinite(f) {
			return badSnapshot("non-finite model parameter %v", f)
		}
	}
	if err := e.Model.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// RestoreModels decodes a snapshot and installs every entry into the
// model LRU (oldest first, reproducing the snapshotted recency order),
// returning the number restored. On any decode or validation error the
// cache is left untouched. Restored entries are charged to the byte
// budget and may evict under it, exactly like fresh fits.
func (c *Cache) RestoreModels(b []byte) (int, error) {
	entries, err := DecodeSnapshot(b)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		c.insertModel(e.Key, e.Model)
	}
	return len(entries), nil
}

// ------------------------------------------------------------ file I/O

// File is the writable handle SaveSnapshotFile needs: sequential writes,
// a durability barrier and a name for the rename step.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations of snapshot persistence so the
// chaos harness can inject disk faults (short writes, EIO, corruption)
// underneath the real save/restore code paths.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadFile(path string) ([]byte, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(path string) error                     { return os.Remove(path) }
func (OSFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }

// SaveSnapshotFile writes data to path atomically: a temp file in the
// same directory, full write, fsync, close, rename. A reader therefore
// sees either the previous snapshot or the complete new one — never a
// torn write. Any failure removes the temp file and reports the error;
// the previous snapshot (if any) survives.
func SaveSnapshotFile(fsys FS, path string, data []byte) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("modelcache: snapshot temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	n, err := f.Write(data)
	if err == nil && n != len(data) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return cleanup(fmt.Errorf("modelcache: snapshot write: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("modelcache: snapshot fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("modelcache: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("modelcache: snapshot rename: %w", err)
	}
	return nil
}

// SaveSnapshot atomically persists the current model LRU to path.
func (c *Cache) SaveSnapshot(fsys FS, path string) error {
	return SaveSnapshotFile(fsys, path, c.SnapshotModels())
}

// RestoreSnapshot loads path and installs its entries, returning the
// restored count. A missing file surfaces as the FS's not-exist error
// (cold start by decision); malformed content as ErrBadSnapshot (cold
// start by necessity).
func (c *Cache) RestoreSnapshot(fsys FS, path string) (int, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return c.RestoreModels(b)
}

// ---------------------------------------------------------- byteReader

// byteReader is a bounds-checked cursor over the snapshot payload.
type byteReader struct {
	buf []byte
	off int
}

func (r *byteReader) rem() int { return len(r.buf) - r.off }

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, badSnapshot("truncated entry data (want %d bytes, have %d)", n, r.rem())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) float64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *byteReader) string() (string, error) {
	n, err := r.uint32()
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", badSnapshot("string length %d exceeds cap %d", n, maxSnapshotString)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
