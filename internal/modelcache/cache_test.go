package modelcache

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

func key(i int) ModelKey {
	return ModelKey{
		LibHash: "lib", Cell: "INV", OutputPin: "ZN", RelatedPin: "A",
		Base: "cell_rise", Slew: float64(i), Load: 0.01, Kind: fit.ModelLVF2,
	}
}

func constModel(mean float64) core.Model {
	return core.FromLVF(core.Theta{Mean: mean, Sigma: 0.1})
}

func TestModelLRUEvictionOrder(t *testing.T) {
	c := New(Options{MaxModels: 3})
	fits := 0
	get := func(i int) {
		t.Helper()
		m, err := c.Model(key(i), func() (core.Model, error) {
			fits++
			return constModel(float64(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Theta1.Mean != float64(i) {
			t.Fatalf("key %d returned mean %g", i, m.Theta1.Mean)
		}
	}

	get(1)
	get(2)
	get(3) // cache: [3 2 1], 3 fits
	get(1) // hit, refreshes 1: [1 3 2]
	get(4) // evicts 2 (the LRU entry): [4 1 3]
	if fits != 4 {
		t.Fatalf("fits = %d, want 4", fits)
	}
	get(2) // must re-fit: 2 was evicted
	if fits != 5 {
		t.Fatalf("fits = %d after re-requesting evicted key, want 5", fits)
	}
	// 2's insertion evicted 3 (then-oldest); 1 and 4 must still be hits.
	get(1)
	get(4)
	if fits != 5 {
		t.Fatalf("fits = %d, want 5 (keys 1 and 4 should be hits)", fits)
	}
	st := c.ModelStats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (keys 2 then 3)", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 5 {
		t.Fatalf("hits/misses = %d/%d, want 3/5", st.Hits, st.Misses)
	}
}

func TestByteBudgetEvictsModelsFirst(t *testing.T) {
	// Budget fits one library plus two model entries.
	c := New(Options{MaxLibraries: 4, MaxModels: 1024, MaxBytes: 1000 + 2*modelCost})
	lib := &liberty.Library{Name: "L"}
	if _, err := c.Library("h1", 1000, func() (*liberty.Library, error) { return lib, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Model(key(i), func() (core.Model, error) { return constModel(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Bytes(); got > 1000+2*modelCost {
		t.Fatalf("bytes = %d over budget %d", got, 1000+2*modelCost)
	}
	if st := c.ModelStats(); st.Entries != 2 || st.Evictions != 3 {
		t.Fatalf("model entries/evictions = %d/%d, want 2/3", st.Entries, st.Evictions)
	}
	// The library must have survived: models are evicted first.
	if st := c.LibStats(); st.Entries != 1 {
		t.Fatalf("library was evicted (entries = %d)", st.Entries)
	}
}

// TestModelSingleflightDedup hammers one cold key from many goroutines
// (run under -race) and demands exactly one fit.
func TestModelSingleflightDedup(t *testing.T) {
	c := New(Options{})
	var fits atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 32
	results := make([]core.Model, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			m, err := c.Model(key(7), func() (core.Model, error) {
				fits.Add(1)
				return constModel(7), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = m
		}(w)
	}
	close(start)
	wg.Wait()
	if n := fits.Load(); n != 1 {
		t.Fatalf("fit ran %d times under concurrent identical queries, want 1", n)
	}
	for w := range results {
		if results[w].Theta1.Mean != 7 {
			t.Fatalf("worker %d got mean %g", w, results[w].Theta1.Mean)
		}
	}
	st := c.ModelStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != workers-1 {
		t.Fatalf("coalesced(%d) + hits(%d) = %d, want %d",
			st.Coalesced, st.Hits, st.Coalesced+st.Hits, workers-1)
	}
}

// TestLibrarySingleflightDedup does the same for the library loader.
func TestLibrarySingleflightDedup(t *testing.T) {
	c := New(Options{})
	var loads atomic.Int64
	lib := &liberty.Library{Name: "L"}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := c.Library("hash", 10, func() (*liberty.Library, error) {
				loads.Add(1)
				return lib, nil
			})
			if err != nil {
				t.Error(err)
			} else if got != lib {
				t.Error("returned a different library pointer")
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
}

// TestErrorsAreNotCached verifies a failed fit is retried by the next
// caller instead of being served from cache.
func TestErrorsAreNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	calls := 0
	_, err := c.Model(key(1), func() (core.Model, error) { calls++; return core.Model{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	m, err := c.Model(key(1), func() (core.Model, error) { calls++; return constModel(5), nil })
	if err != nil || m.Theta1.Mean != 5 {
		t.Fatalf("retry: m=%v err=%v", m, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error must not be cached)", calls)
	}
}

// bimodalSamples draws a deterministic skewed bimodal sample, the shape
// LVF² targets.
func bimodalSamples(t testing.TB, n int, seed uint64) []float64 {
	t.Helper()
	m, err := stats.NewMixture([]float64{0.65, 0.35}, []stats.Dist{
		stats.SNFromMoments(0.100, 0.0040, 0.80),
		stats.SNFromMoments(0.128, 0.0055, 0.40),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := mc.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = m.Sample(rng)
	}
	return xs
}

func modelsBitIdentical(a, b core.Model) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Lambda, b.Lambda) &&
		eq(a.Theta1.Mean, b.Theta1.Mean) && eq(a.Theta1.Sigma, b.Theta1.Sigma) && eq(a.Theta1.Skew, b.Theta1.Skew) &&
		eq(a.Theta2.Mean, b.Theta2.Mean) && eq(a.Theta2.Sigma, b.Theta2.Sigma) && eq(a.Theta2.Skew, b.Theta2.Skew)
}

// TestCachedVsFreshBitIdentical is the property test of the cache's core
// claim: because the fitters are deterministic, a cached model is
// bit-for-bit the model a fresh fit of the same inputs would produce —
// over several sample sets and every cacheable model kind.
func TestCachedVsFreshBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fits several models per trial")
	}
	kinds := []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLVF, fit.ModelGaussian}
	c := New(Options{})
	for trial := 0; trial < 4; trial++ {
		xs := bimodalSamples(t, 1200, 40+uint64(trial))
		for _, kind := range kinds {
			kind := kind
			t.Run(fmt.Sprintf("trial%d/%v", trial, kind), func(t *testing.T) {
				fitFn := func() (core.Model, error) {
					m, _, err := core.FitKindRobust(kind, xs, fit.RobustOptions{})
					return m, err
				}
				k := ModelKey{LibHash: fmt.Sprintf("t%d", trial), Cell: "X",
					Base: "cell_rise", Slew: 0.01, Load: 0.02, Kind: kind}
				first, err := c.Model(k, fitFn)
				if err != nil {
					t.Fatal(err)
				}
				cached, err := c.Model(k, func() (core.Model, error) {
					t.Fatal("second lookup must not re-fit")
					return core.Model{}, nil
				})
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := fitFn()
				if err != nil {
					t.Fatal(err)
				}
				if !modelsBitIdentical(first, cached) {
					t.Fatalf("cached differs from first fit:\n  %+v\n  %+v", first, cached)
				}
				if !modelsBitIdentical(cached, fresh) {
					t.Fatalf("cached differs from fresh fit:\n  %+v\n  %+v", cached, fresh)
				}
			})
		}
	}
}
