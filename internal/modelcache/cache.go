// Package modelcache caches the two expensive artefacts of the serving
// layer: parsed Liberty libraries and fitted per-arc timing models. Both
// live in LRU maps under one shared memory budget, and both entry points
// coalesce concurrent identical misses through a singleflight table so a
// thundering herd of equal queries performs the parse or fit exactly
// once. Hit/miss/eviction/coalescing counters are exported for the
// daemon's /metrics endpoint.
//
// The design follows the hierarchical-SSTA observation (Li et al.) that
// reusing pre-characterised statistical models across queries is what
// makes statistical timing scale: the cache key pins every input of a
// fit — library content hash, cell, arc, base quantity, operating point
// and model kind — so a hit is exactly the model a fresh fit would
// produce (the fitters are deterministic; see the property test).
package modelcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
)

// ModelKey identifies one fitted arc model. Slew and load are the exact
// query-point float64s: queries at distinct operating points are distinct
// models.
type ModelKey struct {
	LibHash    string    // content hash of the source library
	Cell       string    // cell name
	OutputPin  string    // output pin carrying the arc
	RelatedPin string    // arc input pin
	Base       string    // base quantity (cell_rise, ...)
	Slew, Load float64   // operating point
	Kind       fit.Model // requested model kind
}

// RingKey renders the full arc coordinate as a canonical byte string
// for consistent-hash placement. The five name fields are NUL-separated
// (Liberty identifiers never contain NUL) and the operating point is
// encoded as raw IEEE-754 bits, so two keys map to the same ring point
// iff they are the same ModelKey — every replica of a fleet derives the
// same owner for the same query.
func (k ModelKey) RingKey() string {
	b := make([]byte, 0, len(k.LibHash)+len(k.Cell)+len(k.OutputPin)+len(k.RelatedPin)+len(k.Base)+5+20)
	for _, s := range [...]string{k.LibHash, k.Cell, k.OutputPin, k.RelatedPin, k.Base} {
		b = append(b, s...)
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.Slew))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(k.Load))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.Kind))
	return string(b)
}

// Stats is a point-in-time snapshot of one LRU's counters.
type Stats struct {
	Hits, Misses, Evictions, Coalesced int64
	Entries                            int
	Bytes                              int64
}

// Options bounds the cache. Zero values select the defaults.
type Options struct {
	// MaxLibraries bounds parsed-library entries (default 8).
	MaxLibraries int
	// MaxModels bounds fitted-model entries (default 65536).
	MaxModels int
	// MaxBytes bounds the summed cost of both LRUs (default 256 MiB).
	// Library cost is the source text length (a parsed tree is within a
	// small constant of it); model cost is a fixed per-entry estimate.
	MaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxLibraries <= 0 {
		o.MaxLibraries = 8
	}
	if o.MaxModels <= 0 {
		o.MaxModels = 65536
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	return o
}

// modelCost is the approximate resident size of one fitted-model entry:
// the key strings, the core.Model and the LRU bookkeeping.
const modelCost = 256

// Cache is the two-level model cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu     sync.Mutex
	opts   Options
	bytes  int64 // summed cost across both LRUs
	libs   lruMap[string, *liberty.Library]
	models lruMap[ModelKey, core.Model]
	flight map[flightKey]*call
}

// flightKey distinguishes the two keyspaces in one singleflight table.
type flightKey struct {
	lib string
	mk  ModelKey
}

// call is one in-flight load/fit that later arrivals wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache with the given bounds.
func New(o Options) *Cache {
	o = o.withDefaults()
	c := &Cache{opts: o, flight: map[flightKey]*call{}}
	c.libs.init(o.MaxLibraries)
	c.models.init(o.MaxModels)
	return c
}

// HashBytes returns the content hash used for library keys.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Library returns the parsed library for the given content hash, calling
// load on a miss. cost should be the source byte length. Concurrent
// callers with the same hash share one load.
func (c *Cache) Library(hash string, cost int64, load func() (*liberty.Library, error)) (*liberty.Library, error) {
	fk := flightKey{lib: hash}
	c.mu.Lock()
	if lib, ok := c.libs.get(hash); ok {
		c.mu.Unlock()
		return lib, nil
	}
	if cl, ok := c.flight[fk]; ok {
		c.libs.coalesced++
		c.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		return cl.val.(*liberty.Library), nil
	}
	cl := &call{done: make(chan struct{})}
	c.flight[fk] = cl
	c.libs.misses++
	c.mu.Unlock()

	lib, err := load()
	cl.val, cl.err = lib, err
	c.mu.Lock()
	delete(c.flight, fk)
	if err == nil {
		c.insertLib(hash, lib, cost)
	}
	c.mu.Unlock()
	close(cl.done)
	return lib, err
}

// Model returns the fitted model for key, calling fitFn on a miss.
// Concurrent callers with an identical key share one fit.
func (c *Cache) Model(key ModelKey, fitFn func() (core.Model, error)) (core.Model, error) {
	fk := flightKey{mk: key}
	c.mu.Lock()
	if m, ok := c.models.get(key); ok {
		c.mu.Unlock()
		return m, nil
	}
	if cl, ok := c.flight[fk]; ok {
		c.models.coalesced++
		c.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			return core.Model{}, cl.err
		}
		return cl.val.(core.Model), nil
	}
	cl := &call{done: make(chan struct{})}
	c.flight[fk] = cl
	c.models.misses++
	c.mu.Unlock()

	m, err := fitFn()
	cl.val, cl.err = m, err
	c.mu.Lock()
	delete(c.flight, fk)
	if err == nil {
		c.insertModel(key, m)
	}
	c.mu.Unlock()
	close(cl.done)
	return m, err
}

// Peek returns the cached model for key, or false, without running a
// fit and without touching the hit/miss counters. The degraded serving
// path uses it to look for an already-fitted cheaper rung — a peek must
// not distort the warm-ratio statistics the snapshot tests assert on.
func (c *Cache) Peek(key ModelKey) (core.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.models.items[key]; ok {
		c.models.ll.MoveToFront(el)
		return el.Value.(*lruEntry[ModelKey, core.Model]).val, true
	}
	return core.Model{}, false
}

// insertLib adds a parsed library under the shared byte budget
// (caller holds mu).
func (c *Cache) insertLib(hash string, lib *liberty.Library, cost int64) {
	if cost < int64(len(hash)) {
		cost = int64(len(hash))
	}
	c.bytes += c.libs.add(hash, lib, cost)
	c.evictOverBudget()
}

// insertModel adds a fitted model (caller holds mu).
func (c *Cache) insertModel(key ModelKey, m core.Model) {
	c.bytes += c.models.add(key, m, modelCost)
	c.evictOverBudget()
}

// evictOverBudget trims LRU tails until the shared byte budget holds.
// Models are evicted before libraries: a library miss costs a full parse
// and invalidates every model fitted from it (caller holds mu).
func (c *Cache) evictOverBudget() {
	for c.bytes > c.opts.MaxBytes && c.models.len() > 0 {
		c.bytes -= c.models.evictOldest()
	}
	for c.bytes > c.opts.MaxBytes && c.libs.len() > 1 {
		c.bytes -= c.libs.evictOldest()
	}
}

// LibStats snapshots the library LRU counters.
func (c *Cache) LibStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.libs.stats()
}

// ModelStats snapshots the model LRU counters.
func (c *Cache) ModelStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.models.stats()
}

// Bytes returns the summed cost currently charged to the budget.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Clear drops every cached entry (counters survive; in-flight loads are
// unaffected and will re-insert on completion).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes -= c.libs.clear()
	c.bytes -= c.models.clear()
}

// ----------------------------------------------------------------- lruMap

// lruMap is a byte-costed LRU: a map into a recency list. Not
// goroutine-safe; Cache serialises access.
type lruMap[K comparable, V any] struct {
	maxEntries int
	ll         *list.List // front = most recent
	items      map[K]*list.Element
	bytes      int64

	hits, misses, evictions, coalesced int64
}

type lruEntry[K comparable, V any] struct {
	key  K
	val  V
	cost int64
}

func (m *lruMap[K, V]) init(maxEntries int) {
	m.maxEntries = maxEntries
	m.ll = list.New()
	m.items = make(map[K]*list.Element)
}

func (m *lruMap[K, V]) len() int { return m.ll.Len() }

// get returns the value and bumps recency, counting a hit or miss.
func (m *lruMap[K, V]) get(k K) (V, bool) {
	if el, ok := m.items[k]; ok {
		m.ll.MoveToFront(el)
		m.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	// The miss is counted by the caller at singleflight-leader election,
	// so coalesced waiters don't inflate the miss rate.
	return zero, false
}

// add inserts (or refreshes) k and enforces the entry bound, returning
// the net byte-cost delta.
func (m *lruMap[K, V]) add(k K, v V, cost int64) int64 {
	var delta int64
	if el, ok := m.items[k]; ok {
		e := el.Value.(*lruEntry[K, V])
		delta -= e.cost
		e.val, e.cost = v, cost
		m.ll.MoveToFront(el)
	} else {
		m.items[k] = m.ll.PushFront(&lruEntry[K, V]{key: k, val: v, cost: cost})
	}
	delta += cost
	m.bytes += delta
	for m.ll.Len() > m.maxEntries {
		delta -= m.evictOldest()
	}
	return delta
}

// evictOldest removes the least-recently-used entry, returning its cost.
func (m *lruMap[K, V]) evictOldest() int64 {
	el := m.ll.Back()
	if el == nil {
		return 0
	}
	e := el.Value.(*lruEntry[K, V])
	m.ll.Remove(el)
	delete(m.items, e.key)
	m.bytes -= e.cost
	m.evictions++
	return e.cost
}

// clear drops all entries without counting evictions, returning the
// bytes released.
func (m *lruMap[K, V]) clear() int64 {
	released := m.bytes
	m.ll.Init()
	clear(m.items)
	m.bytes = 0
	return released
}

func (m *lruMap[K, V]) stats() Stats {
	return Stats{
		Hits: m.hits, Misses: m.misses, Evictions: m.evictions,
		Coalesced: m.coalesced, Entries: m.ll.Len(), Bytes: m.bytes,
	}
}
