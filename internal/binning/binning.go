// Package binning implements speed binning and the paper's three
// evaluation metrics: bin probability error, 3σ-yield error and CDF RMSE,
// plus the error-reduction normalisation of eq. (12).
//
// Binning follows §2.1: boundaries T₁ < … < Tₙ partition the delay axis
// into n+1 bins; bin probabilities come from CDF differences (eq. 1). The
// paper's experiments use boundaries at μ±3σ, μ±2σ, μ±σ and μ of the
// golden distribution, giving eight bins.
package binning

import (
	"math"

	"lvf2/internal/stats"
)

// Boundaries is a sorted list of bin thresholds T₁ < T₂ < … < Tₙ.
type Boundaries []float64

// SigmaBoundaries returns the paper's seven thresholds
// μ−3σ, μ−2σ, μ−σ, μ, μ+σ, μ+2σ, μ+3σ (eight bins).
func SigmaBoundaries(mean, sd float64) Boundaries {
	return Boundaries{
		mean - 3*sd, mean - 2*sd, mean - sd, mean,
		mean + sd, mean + 2*sd, mean + 3*sd,
	}
}

// Probabilities evaluates eq. (1): the probability mass of each of the
// len(b)+1 bins under the given CDF.
func Probabilities(cdf func(float64) float64, b Boundaries) []float64 {
	n := len(b)
	probs := make([]float64, n+1)
	prev := 0.0
	for i, t := range b {
		c := cdf(t)
		if c < prev {
			c = prev // enforce monotonicity against numerical noise
		}
		probs[i] = c - prev
		prev = c
	}
	probs[n] = 1 - prev
	if probs[n] < 0 {
		probs[n] = 0
	}
	return probs
}

// DistProbabilities is Probabilities for a stats.Dist, using the batch
// CDF form when the distribution provides one (the per-α Owen's-T setup
// then runs once for the whole boundary list).
func DistProbabilities(d stats.Dist, b Boundaries) []float64 {
	if bc, ok := d.(stats.BatchCDF); ok {
		return probsFromCDF(bc.CDFs(nil, b))
	}
	return Probabilities(d.CDF, b)
}

// probsFromCDF converts CDF values at the boundaries to bin masses with
// the same monotonicity guard as Probabilities.
func probsFromCDF(cs []float64) []float64 {
	n := len(cs)
	probs := make([]float64, n+1)
	prev := 0.0
	for i, c := range cs {
		if c < prev {
			c = prev
		}
		probs[i] = c - prev
		prev = c
	}
	probs[n] = 1 - prev
	if probs[n] < 0 {
		probs[n] = 0
	}
	return probs
}

// EmpiricalProbabilities bins the golden sample.
func EmpiricalProbabilities(e *stats.Empirical, b Boundaries) []float64 {
	return Probabilities(e.CDF, b)
}

// BinningError is the mean absolute difference between model and golden
// bin probabilities. The slices must have equal length.
func BinningError(model, golden []float64) float64 {
	if len(model) != len(golden) || len(model) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range model {
		s += math.Abs(model[i] - golden[i])
	}
	return s / float64(len(model))
}

// YieldAtSigma returns P(t ≤ μ+kσ), the fraction of chips meeting a
// target delay set k golden sigmas above the golden mean. k is a real
// sigma multiple — the rare-event serving path asks for 4σ–6σ targets the
// fixed 3σ metric cannot express.
func YieldAtSigma(cdf func(float64) float64, goldenMean, goldenSd, k float64) float64 {
	return cdf(goldenMean + k*goldenSd)
}

// Yield3Sigma returns P(t ≤ μ+3σ), the fraction of chips meeting a target
// delay set three golden sigmas above the golden mean — the paper's
// 3σ-yield metric.
func Yield3Sigma(cdf func(float64) float64, goldenMean, goldenSd float64) float64 {
	return YieldAtSigma(cdf, goldenMean, goldenSd, 3)
}

// YieldError is the absolute 3σ-yield difference between a model and the
// golden sample.
func YieldError(model stats.Dist, e *stats.Empirical) float64 {
	m := e.Moments()
	return math.Abs(Yield3Sigma(model.CDF, m.Mean, m.Std()) -
		Yield3Sigma(e.CDF, m.Mean, m.Std()))
}

// CDFRMSE is the root-mean-square error between the model CDF and the
// empirical CDF, evaluated at up to maxPoints evenly spaced order
// statistics of the golden sample (all points if maxPoints <= 0).
func CDFRMSE(model stats.Dist, e *stats.Empirical, maxPoints int) float64 {
	sorted := e.Sorted()
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	if bc, ok := model.(stats.BatchCDF); ok {
		// Gather the strided order statistics and evaluate in one batch.
		pts := make([]float64, 0, (n+step-1)/step)
		for i := 0; i < n; i += step {
			pts = append(pts, sorted[i])
		}
		cs := bc.CDFs(nil, pts)
		var s float64
		for j, c := range cs {
			fe := (float64(j*step) + 0.5) / float64(n)
			d := c - fe
			s += d * d
		}
		return math.Sqrt(s / float64(len(cs)))
	}
	var s float64
	var cnt int
	for i := 0; i < n; i += step {
		// Mid-rank empirical CDF value at the i-th order statistic.
		fe := (float64(i) + 0.5) / float64(n)
		d := model.CDF(sorted[i]) - fe
		s += d * d
		cnt++
	}
	return math.Sqrt(s / float64(cnt))
}

// ErrorReduction is eq. (12): |baseline − golden| / |result − golden|
// expressed on already-computed error magnitudes. A zero result error
// yields +Inf, except that two exactly-zero errors compare as 1 (both
// models are perfect, e.g. saturated yields); callers that aggregate
// should use Cap.
func ErrorReduction(baselineErr, resultErr float64) float64 {
	if resultErr == 0 {
		if baselineErr == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return math.Abs(baselineErr) / math.Abs(resultErr)
}

// Cap limits an error-reduction ratio so a single near-perfect fit cannot
// dominate an average. The paper's per-scenario numbers run up to ~30×;
// 100× is a safe ceiling.
func Cap(ratio, cap float64) float64 {
	if math.IsInf(ratio, 1) || ratio > cap {
		return cap
	}
	return ratio
}

// Metrics bundles the three evaluation metrics for one fitted model
// against one golden sample.
type Metrics struct {
	BinErr   float64 // mean absolute bin-probability error (8 bins)
	YieldErr float64 // |3σ-yield difference|
	CDFRMSE  float64 // RMSE between model and empirical CDF
}

// Evaluate computes all three metrics using golden-moment bin boundaries.
func Evaluate(model stats.Dist, e *stats.Empirical) Metrics {
	m := e.Moments()
	b := SigmaBoundaries(m.Mean, m.Std())
	return Metrics{
		BinErr:   BinningError(DistProbabilities(model, b), EmpiricalProbabilities(e, b)),
		YieldErr: YieldError(model, e),
		CDFRMSE:  CDFRMSE(model, e, 2000),
	}
}

// Reductions converts per-model metrics to error-reduction ratios against
// a baseline model's metrics (eq. 12).
func Reductions(result, baseline Metrics) Metrics {
	return Metrics{
		BinErr:   ErrorReduction(baseline.BinErr, result.BinErr),
		YieldErr: ErrorReduction(baseline.YieldErr, result.YieldErr),
		CDFRMSE:  ErrorReduction(baseline.CDFRMSE, result.CDFRMSE),
	}
}

// ExpectedRevenue prices a binned distribution: prices[i] is the sale
// price of bin i (use 0 for faulty bins). Returns Σ P(binᵢ)·priceᵢ.
// This is the speed-binning economics of Fig. 2.
func ExpectedRevenue(probs, prices []float64) float64 {
	n := len(probs)
	if len(prices) < n {
		n = len(prices)
	}
	var r float64
	for i := 0; i < n; i++ {
		r += probs[i] * prices[i]
	}
	return r
}
