package binning

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lvf2/internal/stats"
)

func TestSigmaBoundaries(t *testing.T) {
	b := SigmaBoundaries(10, 2)
	want := []float64{4, 6, 8, 10, 12, 14, 16}
	if len(b) != 7 {
		t.Fatalf("len %d", len(b))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("b[%d] = %v want %v", i, b[i], want[i])
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	n := stats.Normal{Mu: 0, Sigma: 1}
	b := SigmaBoundaries(0, 1)
	p := DistProbabilities(n, b)
	if len(p) != 8 {
		t.Fatalf("want 8 bins, got %d", len(p))
	}
	var s float64
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative bin prob %v", v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("bin probs sum to %v", s)
	}
	// Standard normal: innermost bins ≈ 34.13%, outer ≈ 13.59%, 2.14%, 0.13%.
	wants := []float64{0.00135, 0.02140, 0.13591, 0.34134, 0.34134, 0.13591, 0.02140, 0.00135}
	for i, w := range wants {
		if math.Abs(p[i]-w) > 2e-4 {
			t.Errorf("bin %d prob %v want %v", i, p[i], w)
		}
	}
}

func TestProbabilitiesMonotonicityGuard(t *testing.T) {
	// A noisy CDF that wiggles slightly downwards must not produce
	// negative probabilities.
	calls := 0
	cdf := func(x float64) float64 {
		calls++
		if calls == 2 {
			return 0.3 // lower than the previous call's 0.4
		}
		return 0.4
	}
	p := Probabilities(cdf, Boundaries{1, 2})
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability: %v", p)
		}
	}
}

func TestBinningErrorAgainstGolden(t *testing.T) {
	if !math.IsNaN(BinningError([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch must be NaN")
	}
	got := BinningError([]float64{0.5, 0.5}, []float64{0.4, 0.6})
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("binning error %v", got)
	}
}

func TestYieldErrorPerfectModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := stats.Normal{Mu: 5, Sigma: 1}
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = n.Sample(rng)
	}
	e := stats.NewEmpirical(xs)
	if ye := YieldError(n, e); ye > 0.002 {
		t.Errorf("yield error of the true model should be tiny: %v", ye)
	}
}

func TestCDFRMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := stats.Normal{Mu: 0, Sigma: 1}
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	e := stats.NewEmpirical(xs)
	good := CDFRMSE(truth, e, 2000)
	bad := CDFRMSE(stats.Normal{Mu: 1, Sigma: 1}, e, 2000)
	if good > 0.01 {
		t.Errorf("true model RMSE %v", good)
	}
	if bad < 10*good {
		t.Errorf("shifted model RMSE %v should dwarf %v", bad, good)
	}
	if !math.IsNaN(CDFRMSE(truth, stats.NewEmpirical(nil), 10)) {
		t.Error("empty sample must give NaN")
	}
}

func TestErrorReductionAndCap(t *testing.T) {
	if got := ErrorReduction(0.2, 0.1); math.Abs(got-2) > 1e-12 {
		t.Errorf("reduction %v", got)
	}
	if !math.IsInf(ErrorReduction(0.2, 0), 1) {
		t.Error("zero result error must be +Inf")
	}
	if got := ErrorReduction(0, 0); got != 1 {
		t.Errorf("both-zero errors must compare as 1, got %v", got)
	}
	if got := ErrorReduction(0, 0.5); got != 0 {
		t.Errorf("zero baseline vs nonzero result must be 0, got %v", got)
	}
	if Cap(math.Inf(1), 100) != 100 {
		t.Error("cap must clip Inf")
	}
	if Cap(3, 100) != 3 {
		t.Error("cap must pass small values")
	}
}

func TestEvaluateAndReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth, _ := stats.NewMixture(
		[]float64{0.6, 0.4},
		[]stats.Dist{
			stats.Normal{Mu: 0, Sigma: 0.3},
			stats.Normal{Mu: 2, Sigma: 0.3},
		})
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	e := stats.NewEmpirical(xs)

	mTruth := Evaluate(truth, e)
	sm := e.Moments()
	single := stats.Normal{Mu: sm.Mean, Sigma: sm.Std()}
	mSingle := Evaluate(single, e)

	if mTruth.BinErr >= mSingle.BinErr {
		t.Errorf("truth bin err %v should beat single-Gaussian %v", mTruth.BinErr, mSingle.BinErr)
	}
	red := Reductions(mTruth, mSingle)
	if red.BinErr <= 1 {
		t.Errorf("reduction should exceed 1: %v", red.BinErr)
	}
}

func TestExpectedRevenue(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	prices := []float64{0, 10, 8, 5}
	want := 0.2*10 + 0.3*8 + 0.4*5
	if got := ExpectedRevenue(probs, prices); math.Abs(got-want) > 1e-12 {
		t.Errorf("revenue %v want %v", got, want)
	}
	// Short price list truncates.
	if got := ExpectedRevenue(probs, prices[:2]); math.Abs(got-2) > 1e-12 {
		t.Errorf("truncated revenue %v", got)
	}
}

// Property: for any normal model, bin probabilities are a valid
// distribution over 8 bins.
func TestProbabilitiesProperty(t *testing.T) {
	f := func(mu, sdRaw float64) bool {
		sd := math.Abs(math.Mod(sdRaw, 10)) + 1e-3
		m := math.Mod(mu, 100)
		n := stats.Normal{Mu: m, Sigma: sd}
		p := DistProbabilities(n, SigmaBoundaries(m, sd))
		var s float64
		for _, v := range p {
			if v < -1e-15 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
