package binning

import (
	"math"
	"math/rand"
	"testing"

	"lvf2/internal/stats"
)

func TestFrequencyBoundaries(t *testing.T) {
	fb := FrequencyBoundaries(Boundaries{0.5, 1.0, 2.0})
	want := []float64{0.5, 1.0, 2.0}
	if len(fb) != 3 {
		t.Fatalf("len %d", len(fb))
	}
	for i := range want {
		if math.Abs(fb[i]-want[i]) > 1e-12 {
			t.Errorf("fb[%d] = %v want %v", i, fb[i], want[i])
		}
	}
	if FrequencyBoundaries(Boundaries{-1, 1}) != nil {
		t.Error("non-positive delay threshold accepted")
	}
}

func TestFrequencyBinProbabilitiesConsistentWithDelayBins(t *testing.T) {
	// For a delay distribution and thresholds T1 < T2, the frequency bins
	// at 1/T2 < 1/T1 contain the same mass in reverse order.
	d := stats.Normal{Mu: 1.0, Sigma: 0.05}
	db := Boundaries{0.9, 1.0, 1.1}
	delayProbs := DistProbabilities(d, db)
	fb := FrequencyBoundaries(db)
	freqProbs := FrequencyBinProbabilities(d, fb)
	if len(freqProbs) != len(delayProbs) {
		t.Fatalf("lengths %d vs %d", len(freqProbs), len(delayProbs))
	}
	for i := range delayProbs {
		j := len(delayProbs) - 1 - i
		if math.Abs(delayProbs[i]-freqProbs[j]) > 1e-9 {
			t.Errorf("delay bin %d (%v) != freq bin %d (%v)", i, delayProbs[i], j, freqProbs[j])
		}
	}
	var sum float64
	for _, p := range freqProbs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("freq probs sum %v", sum)
	}
}

func TestBinCountsMatchEmpiricalProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := stats.Normal{Mu: 0, Sigma: 1}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	b := SigmaBoundaries(0, 1)
	counts := BinCounts(b, xs)
	emp := EmpiricalProbabilities(stats.NewEmpirical(xs), b)
	var tot int
	for _, c := range counts {
		tot += c
	}
	if tot != len(xs) {
		t.Fatalf("counts sum %d", tot)
	}
	for i, c := range counts {
		if math.Abs(float64(c)/float64(len(xs))-emp[i]) > 1e-9 {
			t.Errorf("bin %d: count frac %v vs empirical %v", i, float64(c)/float64(len(xs)), emp[i])
		}
	}
}

func TestBinIndexForDelayBoundaryTies(t *testing.T) {
	b := Boundaries{1, 2, 3}
	cases := []struct {
		t    float64
		want int
	}{
		{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.5, 2}, {3, 3}, {9, 3},
	}
	for _, c := range cases {
		if got := BinIndexForDelay(b, c.t); got != c.want {
			t.Errorf("BinIndexForDelay(%v) = %d want %d", c.t, got, c.want)
		}
	}
}

func TestMeanFrequencyInverseRelation(t *testing.T) {
	// For a tight distribution, E[1/t] ≈ 1/E[t] with a Jensen correction
	// upward.
	d := stats.Normal{Mu: 2.0, Sigma: 0.02}
	mf := MeanFrequency(d)
	if mf < 0.5 || mf > 0.502 {
		t.Errorf("mean frequency %v want ≈0.5", mf)
	}
	if mf < 1/d.Mean() {
		t.Errorf("Jensen: E[1/t]=%v must be ≥ 1/E[t]=%v", mf, 1/d.Mean())
	}
}

func TestOptimizeBoundariesTwoBins(t *testing.T) {
	// Two bins, price 1 for fast (t < T) and 0 for slow: revenue = CDF(T),
	// maximised by pushing T arbitrarily high — but with price {0, 1}
	// (slow bin pays) the optimum pushes T low. Use three bins with an
	// interior sweet spot instead: prices {0, 1, 0} mean revenue is the
	// mass between the two boundaries, maximised by brackets around the
	// bulk of the distribution.
	d := stats.Normal{Mu: 1.0, Sigma: 0.1}
	b, rev := OptimizeBoundaries(d, []float64{0, 1, 0})
	if len(b) != 2 || b[0] >= b[1] {
		t.Fatalf("boundaries %v", b)
	}
	// Captures nearly all the mass.
	if rev < 0.95 {
		t.Errorf("optimal revenue %v (boundaries %v)", rev, b)
	}
	// Boundaries straddle the mean.
	if b[0] > 1.0 || b[1] < 1.0 {
		t.Errorf("boundaries %v should straddle the mean", b)
	}
}

func TestOptimizeBoundariesBeatsSigmaConvention(t *testing.T) {
	// Asymmetric prices make the μ±kσ convention suboptimal.
	d := stats.SNFromMoments(1.0, 0.08, 0.8)
	prices := []float64{0, 10, 9, 8, 6, 4, 2, 0}
	ref := SigmaBoundaries(1.0, 0.08)
	gain := RevenueGain(d, prices, ref)
	if gain < 1 {
		t.Errorf("optimal boundaries should not lose to the σ convention: gain %v", gain)
	}
}

func TestOptimizeBoundariesDegenerate(t *testing.T) {
	d := stats.Normal{Mu: 1, Sigma: 0.1}
	if b, _ := OptimizeBoundaries(d, []float64{5}); b != nil {
		t.Error("single price has no boundaries")
	}
}
