package binning

import (
	"math"
	"sort"

	"lvf2/internal/stats"
)

// Frequency-domain speed binning: manufacturing test sorts chips by the
// highest permissible operating frequency f_max = 1/t_crit (§1). These
// helpers map a delay distribution into frequency bins, which is how the
// bins of Fig. 2 are actually labelled on a datasheet.

// FrequencyBoundaries converts ascending delay thresholds into ascending
// frequency thresholds (f = 1/t reverses the order). Non-positive delay
// thresholds are rejected by returning nil.
func FrequencyBoundaries(delayBounds Boundaries) Boundaries {
	out := make(Boundaries, 0, len(delayBounds))
	for _, t := range delayBounds {
		if t <= 0 {
			return nil
		}
		out = append(out, 1/t)
	}
	sort.Float64s(out)
	return out
}

// FrequencyBinProbabilities bins a delay distribution by frequency:
// P(f ≤ F) = P(t ≥ 1/F) = 1 − P(t < 1/F). freqBounds must be ascending.
// The returned slice has len(freqBounds)+1 entries, slowest bin first.
func FrequencyBinProbabilities(delayDist stats.Dist, freqBounds Boundaries) []float64 {
	cdfF := func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return 1 - delayDist.CDF(1/f)
	}
	return Probabilities(cdfF, freqBounds)
}

// BinIndexForDelay returns which delay bin (0-based) a measured delay
// falls into for the given ascending boundaries.
func BinIndexForDelay(bounds Boundaries, t float64) int {
	i := sort.SearchFloat64s(bounds, t)
	// SearchFloat64s returns the first boundary >= t. A delay exactly on a
	// boundary belongs to the upper bin (eq. 1 puts T_{i-1} in bin i via
	// the non-strict P(t ≤ T_{i-1}) term).
	if i < len(bounds) && bounds[i] == t {
		return i + 1
	}
	return i
}

// BinCounts histograms measured delays into bins (manufacturing-test
// view of eq. 1).
func BinCounts(bounds Boundaries, delays []float64) []int {
	counts := make([]int, len(bounds)+1)
	for _, t := range delays {
		counts[BinIndexForDelay(bounds, t)]++
	}
	return counts
}

// MeanFrequency returns E[1/t] of a delay distribution by quadrature over
// mean ± 10σ (truncated at a small positive floor).
func MeanFrequency(delayDist stats.Dist) float64 {
	m, s := delayDist.Mean(), stats.Std(delayDist)
	lo := m - 10*s
	if lo <= 1e-12 {
		lo = 1e-12
	}
	hi := m + 10*s
	const n = 400
	h := (hi - lo) / n
	var sum float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*h
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * delayDist.PDF(x) / x
	}
	v := sum * h
	if math.IsNaN(v) {
		return 0
	}
	return v
}
