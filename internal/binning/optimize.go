package binning

import (
	"math"
	"sort"

	"lvf2/internal/opt"
	"lvf2/internal/stats"
)

// Bin-boundary optimisation: the paper motivates accurate statistical
// timing with "an early indicator for pricing strategy development" (§1).
// Given a delay distribution and a price per bin, the expected revenue
// per chip depends on where the bin boundaries sit; this module finds the
// revenue-maximising boundaries, which is exactly the pricing-strategy
// decision the introduction describes.

// OptimizeBoundaries finds len(prices)-1 ascending boundaries maximising
// Σ P(binᵢ)·priceᵢ under the given delay distribution. The first and last
// prices usually price the faulty (too fast) and failing (too slow) bins
// at zero. Boundaries are seeded at the distribution's evenly spaced
// quantiles and refined with Nelder–Mead over an unconstrained
// reparameterisation (log-gaps), which keeps them sorted.
func OptimizeBoundaries(d stats.Dist, prices []float64) (Boundaries, float64) {
	k := len(prices) - 1
	if k < 1 {
		return nil, 0
	}
	// Seed: quantiles at i/(k+1).
	seed := make([]float64, k)
	for i := 0; i < k; i++ {
		seed[i] = stats.Quantile(d, float64(i+1)/float64(k+1))
	}
	sort.Float64s(seed)
	scale := stats.Std(d)
	if scale <= 0 || math.IsNaN(seed[0]) {
		return seed, ExpectedRevenue(DistProbabilities(d, seed), prices)
	}

	// Reparameterise: x0 = first boundary, then log-gaps.
	x := make([]float64, k)
	x[0] = seed[0]
	for i := 1; i < k; i++ {
		gap := seed[i] - seed[i-1]
		if gap <= scale*1e-6 {
			gap = scale * 1e-6
		}
		x[i] = math.Log(gap)
	}
	decode := func(p []float64) Boundaries {
		b := make(Boundaries, k)
		b[0] = p[0]
		for i := 1; i < k; i++ {
			b[i] = b[i-1] + math.Exp(p[i])
		}
		return b
	}
	neg := func(p []float64) float64 {
		b := decode(p)
		return -ExpectedRevenue(DistProbabilities(d, b), prices)
	}
	best, negRev := opt.NelderMead(neg, x, opt.NelderMeadOptions{
		MaxIter: 300 * k,
		TolF:    1e-10,
		TolX:    1e-10,
	})
	b := decode(best)
	rev := -negRev
	// Keep the seed if optimisation somehow regressed.
	if seedRev := ExpectedRevenue(DistProbabilities(d, seed), prices); seedRev > rev {
		return seed, seedRev
	}
	return b, rev
}

// RevenueGain compares the revenue-optimal boundaries against a reference
// boundary set (e.g. the μ±kσ convention), returning optimal/reference.
func RevenueGain(d stats.Dist, prices []float64, reference Boundaries) float64 {
	_, optRev := OptimizeBoundaries(d, prices)
	refRev := ExpectedRevenue(DistProbabilities(d, reference), prices)
	if refRev <= 0 {
		return math.Inf(1)
	}
	return optRev / refRev
}
