package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lvf2/internal/cells"
	"lvf2/internal/circuits"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
)

// Small configs keep these integration tests fast; the bench harness and
// cmd/exptables run the larger versions.
func smallCfg() Config {
	return Config{Samples: 6000, Seed: 42}.WithDefaults()
}

func TestTable1ShapeAndOrdering(t *testing.T) {
	rows, err := Table1(smallCfg())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 scenario rows, got %d", len(rows))
	}
	for _, r := range rows {
		// LVF is its own baseline: reduction exactly 1.
		if r.BinReduction[fit.ModelLVF] != 1 {
			t.Errorf("%s: LVF self-reduction %v", r.Scenario.Name, r.BinReduction[fit.ModelLVF])
		}
		// The paper's headline: LVF2 beats the LVF baseline on every
		// scenario.
		if r.BinReduction[fit.ModelLVF2] <= 1 {
			t.Errorf("%s: LVF2 reduction %v should exceed 1",
				r.Scenario.Name, r.BinReduction[fit.ModelLVF2])
		}
		// On the skew-critical scenarios the gap to the skewless Norm² is
		// structural, not noise: sharp edges need the skewness parameter
		// ("skewness is an indispensable parameter", §4.1).
		switch r.Scenario.Name {
		case "2 Peaks", "Multi-Peaks":
			if r.BinReduction[fit.ModelLVF2] <= r.BinReduction[fit.ModelNorm2] {
				t.Errorf("%s: LVF2 %v must beat Norm2 %v", r.Scenario.Name,
					r.BinReduction[fit.ModelLVF2], r.BinReduction[fit.ModelNorm2])
			}
		}
	}
	// Aggregate leadership: averaged over the five scenarios LVF2 is the
	// strongest model (per-scenario ratios on well-fitted shapes are
	// sampling-noise-dominated at reduced sample counts, so the remaining
	// rows are asserted in aggregate).
	avg := func(m fit.Model) float64 {
		var s float64
		for _, r := range rows {
			s += r.BinReduction[m]
		}
		return s / float64(len(rows))
	}
	for _, m := range []fit.Model{fit.ModelNorm2, fit.ModelLESN} {
		if avg(fit.ModelLVF2) <= avg(m) {
			t.Errorf("aggregate: LVF2 %v should lead %v %v", avg(fit.ModelLVF2), m, avg(m))
		}
	}
	text := RenderTable1(rows)
	for _, name := range []string{"2 Peaks", "Multi-Peaks", "Saddle", "Minor Saddle", "Kurtosis"} {
		if !strings.Contains(text, name) {
			t.Errorf("rendered table missing %q", name)
		}
	}
}

func TestTableCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table1Ctx(ctx, smallCfg()); !errors.Is(err, context.Canceled) {
		t.Errorf("Table1Ctx err = %v, want context.Canceled", err)
	}
	cfg := Table2Config{Config: Config{Samples: 800, Seed: 7}, ArcsPerType: 1, GridStride: 8}
	if _, err := Table2Ctx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("Table2Ctx err = %v, want context.Canceled", err)
	}
}

func TestFig3CSVWellFormed(t *testing.T) {
	rows, err := Table1(smallCfg())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	csv := Fig3CSV(rows, 50)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 5 scenarios × 50 points
	if len(lines) != 1+5*50 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "scenario,x,golden,lvf2,norm2,lesn,lvf" {
		t.Errorf("header %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 6 {
		t.Errorf("data line has %d commas", got)
	}
}

func TestTable2ReducedRun(t *testing.T) {
	cfg := Table2Config{
		Config:      Config{Samples: 1200, Seed: 7},
		ArcsPerType: 1,
		GridStride:  8, // single grid point per arc
	}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 25 {
		t.Fatalf("want 25 rows, got %d", len(rows))
	}
	db, tb, dy, ty := Table2Averages(rows)
	// Shape expectations from the paper: LVF2 average reductions > 1 in
	// all four metrics; LVF pinned at 1.
	for name, m := range map[string]map[fit.Model]float64{
		"delay binning": db, "transition binning": tb,
		"delay yield": dy, "transition yield": ty,
	} {
		if m[fit.ModelLVF2] <= 1 {
			t.Errorf("%s: LVF2 average %v should exceed 1", name, m[fit.ModelLVF2])
		}
		if m[fit.ModelLVF] != 1 {
			t.Errorf("%s: LVF baseline %v != 1", name, m[fit.ModelLVF])
		}
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "Average") || !strings.Contains(text, "NAND2") {
		t.Error("rendered Table 2 incomplete")
	}
}

func TestFig4DiagonalPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid characterisation")
	}
	res, err := Fig4(Fig4Config{Config: Config{Samples: 1500, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CellName != "NAND2" {
		t.Errorf("default cell %s", res.CellName)
	}
	if len(res.DelayRed) != 8 || len(res.DelayRed[0]) != 8 {
		t.Fatal("heat map shape")
	}
	// The multi-Gaussian phenomenon organises along a diagonal: the best
	// diagonal band must outscore the rest of the grid.
	if s := DiagonalScore(res.DelayRed); s <= 0 {
		t.Errorf("delay diagonal score %v, want > 0", s)
	}
	text := RenderFig4(res)
	if !strings.Contains(text, "Delay") || !strings.Contains(text, "Transition") {
		t.Error("rendered Fig 4 incomplete")
	}
}

func TestFig4Errors(t *testing.T) {
	if _, err := Fig4(Fig4Config{CellName: "NOPE"}); err == nil {
		t.Error("unknown cell accepted")
	}
	if _, err := Fig4(Fig4Config{ArcIndex: 9999}); err == nil {
		t.Error("bad arc index accepted")
	}
}

func TestFig5ChainConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("path SSTA")
	}
	corner := spice.TTCorner()
	path := circuits.FO4Chain(10, 0) // strongly bimodal stages
	res, err := Fig5(Config{Samples: 3000, Seed: 13}, path, corner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points %d", len(res.Points))
	}
	first := res.Points[0].Reduction[fit.ModelLVF2]
	last := res.Points[len(res.Points)-1].Reduction[fit.ModelLVF2]
	if first <= 1.5 {
		t.Errorf("first-stage LVF2 reduction %v too small for bimodal stages", first)
	}
	// CLT: the advantage decays along the chain.
	if last >= first {
		t.Errorf("no convergence: first %v last %v", first, last)
	}
	// FO4 positions increase monotonically.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].FO4 <= res.Points[i-1].FO4 {
			t.Fatal("FO4 axis not monotone")
		}
	}
	text := RenderFig5(res)
	if !strings.Contains(text, "fo4-chain-10") {
		t.Error("rendered Fig 5 missing path name")
	}
	// ReductionAtFO4 endpoints.
	if got := res.ReductionAtFO4(fit.ModelLVF2, 0); got != first {
		t.Errorf("ReductionAtFO4(0) = %v want %v", got, first)
	}
	if got := res.ReductionAtFO4(fit.ModelLVF2, 1e9); got != last {
		t.Errorf("ReductionAtFO4(inf) = %v want %v", got, last)
	}
}

func TestDiagonalScoreDegenerate(t *testing.T) {
	if DiagonalScore(nil) != 0 {
		t.Error("nil map")
	}
	// Uniform grid: no diagonal advantage.
	m := make([][]float64, 4)
	for i := range m {
		m[i] = []float64{2, 2, 2, 2}
	}
	if s := DiagonalScore(m); s != 0 {
		t.Errorf("uniform grid score %v", s)
	}
}

func TestPaperScaleConfig(t *testing.T) {
	c := PaperScale()
	if c.Samples != 50000 {
		t.Errorf("paper scale samples %d", c.Samples)
	}
}

func TestCLTConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chain propagation")
	}
	res, err := CLT(Config{Samples: 4000, Seed: 17}, 12, spice.TTCorner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points %d", len(res.Points))
	}
	if res.Rho <= 1 {
		t.Errorf("rho %v implausibly small", res.Rho)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Theorem 1: the sup distance respects the bound at every n and
	// decays with depth.
	for _, p := range res.Points {
		if p.SupDist > p.BEBound {
			t.Errorf("n=%d: sup distance %v exceeds Berry-Esseen bound %v", p.N, p.SupDist, p.BEBound)
		}
	}
	if last.SupDist >= first.SupDist {
		t.Errorf("no convergence: sup %v -> %v", first.SupDist, last.SupDist)
	}
	// The LVF2 advantage decays alongside.
	if last.LVF2Gain >= first.LVF2Gain {
		t.Errorf("LVF2 gain should decay: %v -> %v", first.LVF2Gain, last.LVF2Gain)
	}
	text := RenderCLT(res)
	if !strings.Contains(text, "Theorem 1") {
		t.Error("render incomplete")
	}
}

func TestCLTErrors(t *testing.T) {
	if _, err := CLT(Config{Samples: 500}, 1, spice.TTCorner()); err == nil {
		t.Error("nStages < 2 accepted")
	}
}

func TestVSweepShape(t *testing.T) {
	res, err := VSweep(Config{Samples: 2500, Seed: 19}, []float64{0.8, 0.6, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points %d", len(res.Points))
	}
	// Dropping VDD towards threshold increases skewness (the long tail
	// the LN/LSN/LESN generation of models targets).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Skew <= first.Skew {
		t.Errorf("skewness should grow towards threshold: %v -> %v", first.Skew, last.Skew)
	}
	for _, p := range res.Points {
		if p.Reduction[fit.ModelLVF] != 1 {
			t.Errorf("VDD %v: LVF baseline %v", p.VDD, p.Reduction[fit.ModelLVF])
		}
		if p.Reduction[fit.ModelLVF2] <= 0 {
			t.Errorf("VDD %v: missing LVF2 reduction", p.VDD)
		}
	}
	if !strings.Contains(RenderVSweep(res), "Supply sweep") {
		t.Error("render incomplete")
	}
}

func TestFigureSVGs(t *testing.T) {
	rows, err := Table1(Config{Samples: 1500, Seed: 23})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	svgs := Fig3SVGs(rows, 60)
	if len(svgs) != 5 {
		t.Fatalf("fig3 svgs: %d", len(svgs))
	}
	for slug, svg := range svgs {
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
			t.Errorf("%s: malformed svg", slug)
		}
	}
	f4 := Fig4Result{
		Grid:     cellsDefaultGrid(),
		CellName: "NAND2",
		DelayRed: unitGrid(8), TransRed: unitGrid(8),
	}
	d, tr := Fig4SVGs(f4)
	if !strings.Contains(d, "Fig 4(a)") || !strings.Contains(tr, "Fig 4(b)") {
		t.Error("fig4 titles")
	}
	f5 := Fig5Result{PathName: "demo", Points: []Fig5Point{
		{FO4: 1, Reduction: map[fit.Model]float64{fit.ModelLVF2: 10, fit.ModelNorm2: 5, fit.ModelLESN: 1, fit.ModelLVF: 1}},
		{FO4: 2, Reduction: map[fit.Model]float64{fit.ModelLVF2: 5, fit.ModelNorm2: 3, fit.ModelLESN: 1, fit.ModelLVF: 1}},
	}}
	if svg := Fig5SVG(f5); !strings.Contains(svg, "Fig 5: demo") {
		t.Error("fig5 title")
	}
}

func unitGrid(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = 1 + float64(i+j)
		}
	}
	return m
}

func cellsDefaultGrid() cells.Grid { return cells.DefaultGrid() }

func TestSortRowsLikePaper(t *testing.T) {
	rows := []CellTypeResult{{Cell: "HA"}, {Cell: "INV"}, {Cell: "NAND2"}}
	SortRowsLikePaper(rows)
	if rows[0].Cell != "INV" || rows[2].Cell != "HA" {
		t.Errorf("order: %v %v %v", rows[0].Cell, rows[1].Cell, rows[2].Cell)
	}
}

func TestTable2AveragesEmptyRowsSafe(t *testing.T) {
	rows := []CellTypeResult{
		{Cell: "A", DelayBin: map[fit.Model]float64{fit.ModelLVF2: 2}},
		{Cell: "B", DelayBin: map[fit.Model]float64{fit.ModelLVF2: 4}},
	}
	db, _, _, _ := Table2Averages(rows)
	if db[fit.ModelLVF2] != 3 {
		t.Errorf("average %v", db[fit.ModelLVF2])
	}
}
