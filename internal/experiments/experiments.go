// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic substrate:
//
//	Table 1 / Fig. 3 — five non-Gaussian scenarios, model fits and
//	                   binning error reduction;
//	Table 2          — the 25-type standard-cell library sweep with
//	                   delay/transition binning and 3σ-yield reductions;
//	Fig. 4           — the 8×8 slew–load CDF-RMSE-reduction heat map and
//	                   its diagonal multi-Gaussian pattern;
//	Fig. 5           — binning error reduction along the 16-bit carry
//	                   adder and 6-stage H-tree critical paths.
//
// Absolute values depend on the synthetic electrical model; the paper's
// qualitative shape (who wins, by what order, where it decays) is the
// reproduction target. See EXPERIMENTS.md for the recorded comparison.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lvf2/internal/binning"
	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/fit"
	"lvf2/internal/mc"
	"lvf2/internal/pool"
	"lvf2/internal/spice"
	"lvf2/internal/stats"
)

// Config controls experiment scale. Zero values choose reduced defaults
// that keep `go test` fast; PaperScale returns the full-size settings.
type Config struct {
	Samples int     // MC samples per distribution (paper: 50000)
	Seed    uint64  // base RNG seed
	Cap     float64 // error-reduction cap when aggregating (default 100)
	FitOpts fit.Options
	Workers int // parallel fitting workers (default NumCPU)
	// Models selects the comparison set (default fit.AllModels, the
	// paper's four; fit.ExtendedModels adds the LN/LSN prior-work models).
	Models []fit.Model
	// Repeats averages Fig. 5 reductions over this many independent
	// seeds (default 1).
	Repeats int
	// Checkpoint, when non-nil, journals every Table 1/Table 2 work unit
	// so an interrupted sweep resumes instead of restarting. Open it with
	// the matching Table1Fingerprint/Table2Fingerprint.
	Checkpoint *checkpoint.Journal
	// Retry tunes the per-unit retry/backoff/quarantine policy of a
	// journaled run.
	Retry checkpoint.RetryPolicy
}

// WithDefaults fills zero fields with the reduced defaults.
func (c Config) WithDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 4000
	}
	if c.Seed == 0 {
		c.Seed = 0xC0FFEE
	}
	if c.Cap <= 0 {
		c.Cap = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if len(c.Models) == 0 {
		c.Models = fit.AllModels
	}
	return c
}

// PaperScale returns the full-size configuration (50k samples, as in the
// paper). Expect minutes of runtime for Table 2 at this scale.
func PaperScale() Config {
	return Config{Samples: 50000}.WithDefaults()
}

// ModelEval bundles one fitted model's distribution and metrics.
type ModelEval struct {
	Dist    stats.Dist
	Metrics binning.Metrics
	Err     error
}

// EvaluateAll fits all four paper models to the samples and scores each
// against the empirical golden distribution.
func EvaluateAll(xs []float64, o fit.Options) (map[fit.Model]ModelEval, *stats.Empirical) {
	return EvaluateModels(xs, fit.AllModels, o)
}

// EvaluateModels fits an arbitrary comparison set.
func EvaluateModels(xs []float64, models []fit.Model, o fit.Options) (map[fit.Model]ModelEval, *stats.Empirical) {
	emp := stats.NewEmpirical(xs)
	out := make(map[fit.Model]ModelEval, len(models))
	for _, m := range models {
		t0 := time.Now()
		r, err := fit.Fit(m, xs, o)
		observeFit(m, t0)
		if err != nil {
			out[m] = ModelEval{Err: err}
			continue
		}
		out[m] = ModelEval{Dist: r.Dist, Metrics: binning.Evaluate(r.Dist, emp)}
	}
	return out, emp
}

// reduction computes the eq. (12) ratio of a model metric against the LVF
// baseline, capped for aggregation.
func (c Config) reduction(result, baseline float64) float64 {
	return binning.Cap(binning.ErrorReduction(baseline, result), c.Cap)
}

// ---------------------------------------------------------------- Table 1

// ScenarioResult is one row of Table 1 plus the fitted curves of Fig. 3.
type ScenarioResult struct {
	Scenario spice.Scenario
	Golden   *stats.Empirical
	Evals    map[fit.Model]ModelEval
	// BinReduction is the binning error reduction vs LVF (Table 1).
	BinReduction map[fit.Model]float64
	// Restored reports the row was replayed from a checkpoint journal:
	// BinReduction is exact, but the golden samples and fitted curves
	// were not recomputed, so Golden and Evals are nil (Fig. 3 renderers
	// skip such rows).
	Restored bool
}

// Table1 runs the five-scenario assessment.
func Table1(cfg Config) ([]ScenarioResult, error) {
	return Table1Ctx(context.Background(), cfg)
}

// Table1Ctx is Table1 with cooperative cancellation. Scenario fits run on
// a panic-hardened worker pool; a panicking fitter surfaces as a typed
// *pool.PanicError instead of killing the process, and cancelling ctx
// stops dispatch promptly with context.Canceled.
func Table1Ctx(ctx context.Context, cfg Config) ([]ScenarioResult, error) {
	cfg = cfg.WithDefaults()
	scenarios, err := spice.Scenarios()
	if err != nil {
		return nil, err
	}
	out := make([]ScenarioResult, len(scenarios))
	runner := &checkpoint.Runner{Journal: cfg.Checkpoint, Policy: cfg.Retry}
	labels := make([]string, len(scenarios))
	for i, sc := range scenarios {
		labels[i] = "table1/" + sc.Name
	}
	err = pool.ForEachLabeled(ctx, pool.Options{Workers: cfg.Workers}, labels,
		func(tctx context.Context, i int) error {
			sc := scenarios[i]
			k := checkpoint.Key{Cell: "experiments", Pin: "table1", Arc: sc.Name, Slew: i, Kind: "scenario"}
			var res ScenarioResult
			unit, uerr := runner.Do(tctx, k, func(context.Context) ([]byte, error) {
				rng := mc.NewRNG(cfg.Seed + uint64(i)*7919)
				xs := sc.GoldenSamples(rng, cfg.Samples)
				evals, emp := EvaluateModels(xs, cfg.Models, cfg.FitOpts)
				res = ScenarioResult{
					Scenario:     sc,
					Golden:       emp,
					Evals:        evals,
					BinReduction: make(map[fit.Model]float64, len(evals)),
				}
				base := evals[fit.ModelLVF].Metrics
				for m, e := range evals {
					if e.Err != nil {
						continue
					}
					res.BinReduction[m] = cfg.reduction(e.Metrics.BinErr, base.BinErr)
				}
				scenariosTotal.Inc()
				return encodeReductions1(res.BinReduction), nil
			}, nil)
			if uerr != nil {
				if errors.Is(uerr, checkpoint.ErrUnitDropped) {
					// Poison scenario: emit an empty row so the other four
					// still render instead of aborting the table.
					out[i] = ScenarioResult{Scenario: sc, BinReduction: map[fit.Model]float64{}}
					return nil
				}
				return uerr
			}
			if unit.Restored {
				if len(unit.Payload) == 0 {
					// Restored quarantined scenario: same empty row an
					// in-run drop produces.
					out[i] = ScenarioResult{Scenario: sc, BinReduction: map[fit.Model]float64{}, Restored: true}
					return nil
				}
				red, derr := decodeReductions1(unit.Payload)
				if derr != nil {
					return fmt.Errorf("experiments: unit %s payload: %w", k, derr)
				}
				out[i] = ScenarioResult{Scenario: sc, BinReduction: red, Restored: true}
				return nil
			}
			out[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	restored := 0
	for i := range out {
		if out[i].Restored {
			restored++
		}
	}
	cfg.Checkpoint.SetResumeSkipRatio(restored, len(scenarios))
	return out, nil
}

// RenderTable1 formats the scenario assessment like the paper's Table 1.
// Any model present in the rows beyond the paper's four (e.g. LN/LSN from
// the extended set) gets an extra column.
func RenderTable1(rows []ScenarioResult) string {
	order := []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLESN}
	if len(rows) > 0 {
		for _, m := range []fit.Model{fit.ModelLN, fit.ModelLSN} {
			if _, ok := rows[0].BinReduction[m]; ok {
				order = append(order, m)
			}
		}
	}
	order = append(order, fit.ModelLVF)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Scenarios Assessment among Models (binning error reduction, x)\n")
	fmt.Fprintf(&b, "%-14s", "Scenario")
	for _, m := range order {
		fmt.Fprintf(&b, " %8s", m)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Scenario.Name)
		for _, m := range order {
			fmt.Fprintf(&b, " %8.2f", r.BinReduction[m])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig3CSV renders the fitted PDFs of every scenario as CSV series
// (x, golden KDE, LVF2, Norm2, LESN, LVF) — the data behind Fig. 3.
func Fig3CSV(rows []ScenarioResult, points int) string {
	if points <= 1 {
		points = 200
	}
	var b strings.Builder
	b.WriteString("scenario,x,golden,lvf2,norm2,lesn,lvf\n")
	for _, r := range rows {
		if r.Golden == nil {
			continue // restored from a checkpoint: no fitted curves to plot
		}
		lo := r.Golden.QuantileValue(0.001)
		hi := r.Golden.QuantileValue(0.999)
		span := hi - lo
		lo -= 0.1 * span
		hi += 0.1 * span
		step := (hi - lo) / float64(points-1)
		for i := 0; i < points; i++ {
			x := lo + float64(i)*step
			fmt.Fprintf(&b, "%s,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				strings.ReplaceAll(r.Scenario.Name, " ", "_"), x,
				r.Golden.PDF(x),
				pdfOrZero(r.Evals[fit.ModelLVF2], x),
				pdfOrZero(r.Evals[fit.ModelNorm2], x),
				pdfOrZero(r.Evals[fit.ModelLESN], x),
				pdfOrZero(r.Evals[fit.ModelLVF], x))
		}
	}
	return b.String()
}

func pdfOrZero(e ModelEval, x float64) float64 {
	if e.Err != nil || e.Dist == nil {
		return 0
	}
	return e.Dist.PDF(x)
}

// ---------------------------------------------------------------- Table 2

// Table2Config adds library-sweep scale knobs.
type Table2Config struct {
	Config
	// ArcsPerType caps the arcs characterised per cell type (0 = all,
	// paper scale). The reduced default is 2.
	ArcsPerType int
	// GridStride subsamples the 8×8 grid (1 = all 64 points; reduced
	// default 4 → 2×2).
	GridStride int
}

// WithDefaults fills zero fields.
func (c Table2Config) WithDefaults() Table2Config {
	c.Config = c.Config.WithDefaults()
	if c.ArcsPerType == 0 {
		c.ArcsPerType = 2
	}
	if c.GridStride <= 0 {
		c.GridStride = 4
	}
	return c
}

// CellTypeResult is one row of Table 2: per-type average error reductions.
type CellTypeResult struct {
	Cell     string
	ArcCount int // Table 2's "test arcs" column (library definition)
	ArcsRun  int // arcs actually characterised in this run
	// Reductions indexed by [kind][model]: kind 0 = delay binning,
	// 1 = transition binning, 2 = delay 3σ-yield, 3 = transition 3σ-yield.
	DelayBin   map[fit.Model]float64
	TransBin   map[fit.Model]float64
	DelayYield map[fit.Model]float64
	TransYield map[fit.Model]float64
}

// Table2 sweeps the standard-cell library and aggregates the four
// error-reduction metrics per cell type.
func Table2(cfg Table2Config) ([]CellTypeResult, error) {
	return Table2Ctx(context.Background(), cfg)
}

// Table2Ctx is Table2 with cooperative cancellation. The producer streams
// characterised distributions into a panic-hardened fitting pool (the
// paper-scale sweep is far too large to precompute), so memory stays
// bounded while fitter panics surface as typed errors and cancellation
// stops both the producer and the workers promptly.
//
// Each (arc, slew, load, kind) point is one work unit. Unit values land
// in per-unit slots and are aggregated in deterministic production order
// after the pool drains, so the reported averages are independent of
// worker scheduling — and a journaled resume, which restores some units
// and recomputes others, sums in exactly the same order as an
// uninterrupted run. Quarantined (poison) units are excluded from the
// averages rather than aborting the sweep.
func Table2Ctx(ctx context.Context, cfg Table2Config) ([]CellTypeResult, error) {
	cfg = cfg.WithDefaults()
	lib := cells.Library()
	out := make([]CellTypeResult, len(lib))
	runner := &checkpoint.Runner{Journal: cfg.Checkpoint, Policy: cfg.Retry}

	// slot is one unit's place in production order; vals stays nil for
	// units that failed out (quarantined-dropped), which the aggregation
	// below skips.
	type slot struct {
		typeIdx  int
		binIdx   int
		yieldIdx int
		vals     map[fit.Model][2]float64 // [bin, yield] reductions
	}
	var slots []*slot

	p := pool.New(ctx, pool.Options{Workers: cfg.Workers})
	charCfg := cells.CharConfig{
		Samples:    cfg.Samples,
		Seed:       cfg.Seed,
		GridStride: cfg.GridStride,
	}.WithDefaults()
	terminal := func(k checkpoint.Key) bool {
		rec, ok := cfg.Checkpoint.Lookup(k)
		return ok && (rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined)
	}
	unitKey := func(arc cells.Arc, si, li int, kind cells.Kind) checkpoint.Key {
		return checkpoint.Key{Cell: arc.Cell, Pin: "table2", Arc: arc.Label, Slew: si, Load: li, Kind: kind.String()}
	}
	var restored atomic.Int64
	fitJob := func(s *slot, k checkpoint.Key, d cells.Distribution, haveDist bool) func(context.Context) error {
		return func(tctx context.Context) error {
			unit, uerr := runner.Do(tctx, k, func(context.Context) ([]byte, error) {
				if !haveDist {
					return nil, fmt.Errorf("experiments: no samples for unit %s", k)
				}
				evals, _ := EvaluateAll(d.Samples, cfg.FitOpts)
				base := evals[fit.ModelLVF].Metrics
				vals := make(map[fit.Model][2]float64, len(evals))
				for m, e := range evals {
					if e.Err != nil {
						continue
					}
					vals[m] = [2]float64{
						cfg.reduction(e.Metrics.BinErr, base.BinErr),
						cfg.reduction(e.Metrics.YieldErr, base.YieldErr),
					}
				}
				arcsTotal.Inc()
				return encodeReductions2(vals), nil
			}, nil)
			if uerr != nil {
				if errors.Is(uerr, checkpoint.ErrUnitDropped) {
					return nil // poison unit: excluded from the averages
				}
				return uerr
			}
			if unit.Restored {
				restored.Add(1)
			}
			if len(unit.Payload) == 0 {
				return nil // restored quarantined-dropped unit
			}
			vals, derr := decodeReductions2(unit.Payload)
			if derr != nil {
				return fmt.Errorf("experiments: unit %s payload: %w", k, derr)
			}
			s.vals = vals
			return nil
		}
	}

produce:
	for ti, ct := range lib {
		arcs := ct.Arcs()
		if cfg.ArcsPerType > 0 && len(arcs) > cfg.ArcsPerType {
			arcs = arcs[:cfg.ArcsPerType]
		}
		out[ti] = CellTypeResult{Cell: ct.Name, ArcCount: ct.ArcCount, ArcsRun: len(arcs)}
		for _, arc := range arcs {
			arc := arc
			// Skip a point's Monte-Carlo pass only when BOTH of its units
			// are already journaled terminal.
			acfg := charCfg
			acfg.Skip = func(_ cells.Arc, si, li int) bool {
				return terminal(unitKey(arc, si, li, cells.Delay)) &&
					terminal(unitKey(arc, si, li, cells.Transition))
			}
			dists, cerr := cells.CharacterizeArcCtx(ctx, acfg, arc)
			if cerr != nil {
				break produce // cancelled: stop producing, drain below
			}
			byPoint := make(map[[3]int]cells.Distribution, len(dists))
			for _, d := range dists {
				byPoint[[3]int{d.SlewIdx, d.LoadIdx, int(d.Kind)}] = d
			}
			for _, gp := range charCfg.SweepPoints() {
				for _, kind := range [...]cells.Kind{cells.Delay, cells.Transition} {
					k := unitKey(arc, gp.SlewIdx, gp.LoadIdx, kind)
					s := &slot{typeIdx: ti}
					if kind == cells.Delay {
						s.binIdx, s.yieldIdx = 0, 2
					} else {
						s.binIdx, s.yieldIdx = 1, 3
					}
					slots = append(slots, s)
					d, have := byPoint[[3]int{gp.SlewIdx, gp.LoadIdx, int(kind)}]
					if p.Submit(k.String(), fitJob(s, k, d, have)) != nil {
						break produce // pool refused: context cancelled
					}
				}
			}
		}
	}
	if err := p.Wait(); err != nil {
		return nil, err
	}
	cfg.Checkpoint.SetResumeSkipRatio(int(restored.Load()), len(slots))

	// Aggregate in production order: deterministic float summation.
	type acc struct {
		sums   map[fit.Model]*[4]float64
		counts [4]int
	}
	accs := make([]acc, len(lib))
	for i := range accs {
		accs[i].sums = make(map[fit.Model]*[4]float64)
		for _, m := range fit.AllModels {
			accs[i].sums[m] = &[4]float64{}
		}
	}
	for _, s := range slots {
		if s.vals == nil {
			continue
		}
		a := &accs[s.typeIdx]
		for _, m := range fit.AllModels {
			if v, ok := s.vals[m]; ok {
				a.sums[m][s.binIdx] += v[0]
				a.sums[m][s.yieldIdx] += v[1]
			}
		}
		a.counts[s.binIdx]++
		a.counts[s.yieldIdx]++
	}
	for ti := range out {
		a := &accs[ti]
		mk := func(idx int) map[fit.Model]float64 {
			r := make(map[fit.Model]float64, len(fit.AllModels))
			for _, m := range fit.AllModels {
				if a.counts[idx] > 0 {
					r[m] = a.sums[m][idx] / float64(a.counts[idx])
				}
			}
			return r
		}
		out[ti].DelayBin = mk(0)
		out[ti].TransBin = mk(1)
		out[ti].DelayYield = mk(2)
		out[ti].TransYield = mk(3)
	}
	return out, nil
}

// Table2Averages computes the "Average" row.
func Table2Averages(rows []CellTypeResult) (delayBin, transBin, delayYield, transYield map[fit.Model]float64) {
	mk := func(sel func(CellTypeResult) map[fit.Model]float64) map[fit.Model]float64 {
		sum := make(map[fit.Model]float64)
		for _, r := range rows {
			for m, v := range sel(r) {
				sum[m] += v
			}
		}
		for m := range sum {
			sum[m] /= float64(len(rows))
		}
		return sum
	}
	return mk(func(r CellTypeResult) map[fit.Model]float64 { return r.DelayBin }),
		mk(func(r CellTypeResult) map[fit.Model]float64 { return r.TransBin }),
		mk(func(r CellTypeResult) map[fit.Model]float64 { return r.DelayYield }),
		mk(func(r CellTypeResult) map[fit.Model]float64 { return r.TransYield })
}

// RenderTable2 formats the library assessment like the paper's Table 2.
func RenderTable2(rows []CellTypeResult) string {
	var b strings.Builder
	order := []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLESN, fit.ModelLVF}
	fmt.Fprintf(&b, "Table 2: Standard Cell Library Assessment among Models (error reduction, x)\n")
	fmt.Fprintf(&b, "%-7s %5s |%28s |%28s |%28s |%28s\n", "Cell", "Arcs",
		"Delay Binning", "Transition Binning", "Delay 3s-Yield", "Transition 3s-Yield")
	fmt.Fprintf(&b, "%-7s %5s |", "", "")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "%7s%7s%7s%7s |", "LVF2", "Norm2", "LESN", "LVF")
	}
	b.WriteString("\n")
	writeGroup := func(m map[fit.Model]float64) {
		for _, mod := range order {
			fmt.Fprintf(&b, "%7.2f", m[mod])
		}
		b.WriteString(" |")
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %5d |", r.Cell, r.ArcCount)
		writeGroup(r.DelayBin)
		writeGroup(r.TransBin)
		writeGroup(r.DelayYield)
		writeGroup(r.TransYield)
		b.WriteString("\n")
	}
	db, tb, dy, ty := Table2Averages(rows)
	fmt.Fprintf(&b, "%-7s %5s |", "Average", "")
	writeGroup(db)
	writeGroup(tb)
	writeGroup(dy)
	writeGroup(ty)
	b.WriteString("\n")
	return b.String()
}

// SortRowsLikePaper orders rows in the paper's Table 2 cell order.
func SortRowsLikePaper(rows []CellTypeResult) {
	order := map[string]int{}
	for i, ct := range cells.Library() {
		order[ct.Name] = i
	}
	sort.Slice(rows, func(a, b int) bool { return order[rows[a].Cell] < order[rows[b].Cell] })
}
