package experiments

import (
	"fmt"
	"strings"

	"lvf2/internal/binning"
	"lvf2/internal/cells"
	"lvf2/internal/circuits"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
)

// ------------------------------------------------------------------ Fig 4

// Fig4Config selects the cell/arc of the accuracy-pattern study.
type Fig4Config struct {
	Config
	CellName string // default NAND2, as in the paper
	ArcIndex int
}

// Fig4Result holds the per-grid-point CDF-RMSE reduction of LVF² vs LVF
// for delay and transition — the two heat maps of Fig. 4.
type Fig4Result struct {
	Grid     cells.Grid
	CellName string
	DelayRed [][]float64 // [slew][load]
	TransRed [][]float64
}

// Fig4 characterises one arc over the full 8×8 grid and scores LVF²'s
// CDF-RMSE reduction at every point.
func Fig4(cfg Fig4Config) (Fig4Result, error) {
	cfg.Config = cfg.Config.WithDefaults()
	if cfg.CellName == "" {
		cfg.CellName = "NAND2"
	}
	ct, ok := cells.CellByName(cfg.CellName)
	if !ok {
		return Fig4Result{}, fmt.Errorf("experiments: unknown cell %q", cfg.CellName)
	}
	arcs := ct.Arcs()
	if cfg.ArcIndex < 0 || cfg.ArcIndex >= len(arcs) {
		return Fig4Result{}, fmt.Errorf("experiments: arc index %d out of range", cfg.ArcIndex)
	}
	grid := cells.DefaultGrid()
	res := Fig4Result{Grid: grid, CellName: cfg.CellName}
	res.DelayRed = make([][]float64, len(grid.Slews))
	res.TransRed = make([][]float64, len(grid.Slews))
	for i := range res.DelayRed {
		res.DelayRed[i] = make([]float64, len(grid.Loads))
		res.TransRed[i] = make([]float64, len(grid.Loads))
	}
	charCfg := cells.CharConfig{Samples: cfg.Samples, Seed: cfg.Seed, GridStride: 1}
	for _, d := range cells.CharacterizeArc(charCfg, arcs[cfg.ArcIndex]) {
		evals, _ := EvaluateAll(d.Samples, cfg.FitOpts)
		lvf := evals[fit.ModelLVF]
		lvf2 := evals[fit.ModelLVF2]
		if lvf.Err != nil || lvf2.Err != nil {
			continue
		}
		red := cfg.reduction(lvf2.Metrics.CDFRMSE, lvf.Metrics.CDFRMSE)
		if d.Kind == cells.Delay {
			res.DelayRed[d.SlewIdx][d.LoadIdx] = red
		} else {
			res.TransRed[d.SlewIdx][d.LoadIdx] = red
		}
	}
	return res, nil
}

// RenderFig4 draws the two heat maps as text grids (loads down, slews
// across, matching the paper's axes).
func RenderFig4(r Fig4Result) string {
	var b strings.Builder
	draw := func(title string, m [][]float64) {
		fmt.Fprintf(&b, "%s — LVF2 CDF-RMSE reduction (x) by slew (cols) and load (rows)\n", title)
		b.WriteString("        ")
		for i := range r.Grid.Slews {
			fmt.Fprintf(&b, "   sw%d", i+1)
		}
		b.WriteString("\n")
		for j := range r.Grid.Loads {
			fmt.Fprintf(&b, "cap%d %7.5f:", j+1, r.Grid.Loads[j])
			for i := range r.Grid.Slews {
				fmt.Fprintf(&b, " %5.1f", m[i][j])
			}
			b.WriteString("\n")
		}
	}
	draw(fmt.Sprintf("(a) %s Delay", r.CellName), r.DelayRed)
	draw(fmt.Sprintf("(b) %s Transition", r.CellName), r.TransRed)
	return b.String()
}

// DiagonalScore quantifies the Fig. 4 claim that multi-Gaussian strength
// organises along slew–load diagonals: it returns the mean reduction on
// the best diagonal band (i−j = const) minus the mean off that band.
// A positive score confirms the diagonal pattern.
func DiagonalScore(m [][]float64) float64 {
	n := len(m)
	if n == 0 {
		return 0
	}
	bestDiag, bestMean := 0, -1.0
	for d := -(n - 1); d < n; d++ {
		var sum float64
		var cnt int
		for i := 0; i < n; i++ {
			j := i - d
			if j >= 0 && j < len(m[i]) {
				sum += m[i][j]
				cnt++
			}
		}
		if cnt >= 3 && sum/float64(cnt) > bestMean {
			bestMean = sum / float64(cnt)
			bestDiag = d
		}
	}
	var off float64
	var offCnt int
	for i := range m {
		for j := range m[i] {
			if i-j != bestDiag {
				off += m[i][j]
				offCnt++
			}
		}
	}
	if offCnt == 0 {
		return 0
	}
	return bestMean - off/float64(offCnt)
}

// ------------------------------------------------------------------ Fig 5

// Fig5Point is one x-position of Fig. 5: the path prefix depth in FO4 and
// each model's binning error reduction vs LVF at that depth.
type Fig5Point struct {
	Label     string
	FO4       float64
	Reduction map[fit.Model]float64
}

// Fig5Result is one curve set (one benchmark circuit).
type Fig5Result struct {
	PathName string
	FO4Delay float64
	Points   []Fig5Point
}

// Fig5 runs block-based SSTA along a benchmark path and scores every
// prefix against the MC golden accumulation. With Repeats > 1 the
// per-point reductions are averaged across independent seeds — deep in a
// path both LVF and LVF² errors are tiny, so a single-seed ratio is
// noise-dominated.
func Fig5(cfg Config, path circuits.Path, corner spice.Corner) (Fig5Result, error) {
	cfg = cfg.WithDefaults()
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	fo4, err := circuits.FO4Delay(corner)
	if err != nil {
		return Fig5Result{}, err
	}
	out := Fig5Result{PathName: path.Name, FO4Delay: fo4}
	for rep := 0; rep < repeats; rep++ {
		stages := path.MCStages(corner, cfg.Samples, cfg.Seed+uint64(rep)*60013)
		results, err := ssta.PropagateChain(stages, fit.AllModels, cfg.FitOpts)
		if err != nil {
			return Fig5Result{}, err
		}
		for si, r := range results {
			baseVar, ok := r.Vars[fit.ModelLVF]
			if !ok {
				continue
			}
			if rep == 0 {
				out.Points = append(out.Points, Fig5Point{
					Label:     r.Stage.Label,
					FO4:       r.CumNominal / fo4,
					Reduction: make(map[fit.Model]float64, len(fit.AllModels)),
				})
			}
			base := binning.Evaluate(baseVar.Dist(), r.Golden)
			for _, m := range fit.AllModels {
				v, ok := r.Vars[m]
				if !ok {
					continue
				}
				met := binning.Evaluate(v.Dist(), r.Golden)
				out.Points[si].Reduction[m] += cfg.reduction(met.BinErr, base.BinErr) / float64(repeats)
			}
		}
	}
	return out, nil
}

// RenderFig5 prints the per-depth reduction series.
func RenderFig5(r Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: Binning Error Reduction along %s (FO4 delay = %.4f ns)\n", r.PathName, r.FO4Delay)
	fmt.Fprintf(&b, "%-14s %7s %8s %8s %8s %8s\n", "Stage", "FO4", "LVF2", "Norm2", "LESN", "LVF")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %7.1f %8.2f %8.2f %8.2f %8.2f\n", p.Label, p.FO4,
			p.Reduction[fit.ModelLVF2], p.Reduction[fit.ModelNorm2],
			p.Reduction[fit.ModelLESN], p.Reduction[fit.ModelLVF])
	}
	return b.String()
}

// ReductionAtFO4 interpolates a model's reduction at the given FO4 depth
// (nearest point at or past the depth; the paper quotes values "at 8-FO4"
// and "at the last cell").
func (r Fig5Result) ReductionAtFO4(m fit.Model, fo4 float64) float64 {
	for _, p := range r.Points {
		if p.FO4 >= fo4 {
			return p.Reduction[m]
		}
	}
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].Reduction[m]
}
