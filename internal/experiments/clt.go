package experiments

import (
	"fmt"
	"math"
	"strings"

	"lvf2/internal/binning"
	"lvf2/internal/circuits"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
	"lvf2/internal/stats"
)

// CLT experiment: a direct empirical validation of §3.4's Theorem 1
// (Berry–Esseen). For a uniform chain of identically-shaped stages we
// measure, per prefix length n, the sup-distance between the standardised
// accumulated-delay CDF and the standard normal CDF, and compare it with
// the C·ρ/√n bound. The paper derives the O(1/√n) convergence rate but
// does not plot it; this experiment closes that loop and quantifies when
// switching from LVF² back to LVF is safe.

// CLTPoint is one prefix length's measurement.
type CLTPoint struct {
	N        int     // prefix length (stages)
	FO4      float64 // prefix depth in FO4
	SupDist  float64 // sup_x |F_n(x) − Φ(x)| of the standardised sum
	BEBound  float64 // Berry–Esseen bound C·ρ/√n
	LVF2Gain float64 // binning error reduction of LVF² vs LVF at this depth
}

// CLTResult is the whole convergence curve.
type CLTResult struct {
	Stages int
	Rho    float64 // third absolute standardised moment of one stage
	Points []CLTPoint
}

// CLT runs the convergence study on an n-stage maximally-bimodal FO4
// chain.
func CLT(cfg Config, nStages int, corner spice.Corner) (CLTResult, error) {
	cfg = cfg.WithDefaults()
	if nStages < 2 {
		return CLTResult{}, fmt.Errorf("experiments: CLT needs at least 2 stages")
	}
	path := circuits.FO4Chain(nStages, 0)
	stages := path.MCStages(corner, cfg.Samples, cfg.Seed)
	results, err := ssta.PropagateChain(stages, cfg.Models, cfg.FitOpts)
	if err != nil {
		return CLTResult{}, err
	}
	fo4, err := circuits.FO4Delay(corner)
	if err != nil {
		return CLTResult{}, err
	}
	out := CLTResult{
		Stages: nStages,
		Rho:    ssta.AbsThirdStandardizedMoment(stages[0].Samples),
	}
	for i, r := range results {
		n := i + 1
		m := r.Golden.Moments()
		sup := supDistToNormal(r.Golden.Sorted(), m.Mean, m.Std())
		pt := CLTPoint{
			N:       n,
			FO4:     r.CumNominal / fo4,
			SupDist: sup,
			BEBound: ssta.BerryEsseenBound(out.Rho, n),
		}
		if lvf, ok := r.Vars[fit.ModelLVF]; ok {
			if lvf2, ok2 := r.Vars[fit.ModelLVF2]; ok2 {
				base := binning.Evaluate(lvf.Dist(), r.Golden)
				res := binning.Evaluate(lvf2.Dist(), r.Golden)
				pt.LVF2Gain = cfg.reduction(res.BinErr, base.BinErr)
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// supDistToNormal computes sup |F_emp(x) − Φ((x−μ)/σ)| over the sorted
// sample (the KS statistic against the moment-matched Gaussian).
func supDistToNormal(sorted []float64, mean, sd float64) float64 {
	n := len(sorted)
	if n == 0 || sd <= 0 {
		return 0
	}
	var worst float64
	for i, x := range sorted {
		fn := stats.StdNormCDF((x - mean) / sd)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if d := math.Abs(fn - lo); d > worst {
			worst = d
		}
		if d := math.Abs(fn - hi); d > worst {
			worst = d
		}
	}
	return worst
}

// RenderCLT prints the convergence table.
func RenderCLT(r CLTResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 1 validation: ρ = %.3f, bound = %.4f/√n (C = %.4f)\n",
		r.Rho, ssta.BerryEsseenConstant*r.Rho, ssta.BerryEsseenConstant)
	fmt.Fprintf(&b, "%4s %7s %12s %12s %10s\n", "n", "FO4", "sup|Fn-Phi|", "BE bound", "LVF2 gain")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%4d %7.1f %12.4f %12.4f %10.2f\n",
			p.N, p.FO4, p.SupDist, p.BEBound, p.LVF2Gain)
	}
	return b.String()
}
