package experiments

import (
	"fmt"
	"strings"

	"lvf2/internal/binning"
	"lvf2/internal/cells"
	"lvf2/internal/fit"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
	"lvf2/internal/stats"
)

// Supply-voltage sweep: the related work the paper builds on (LN [5],
// LSN [6], LESN [7]) exists because delay distributions become long-tailed
// as V_DD approaches the threshold voltage. This experiment sweeps V_DD
// from the paper's 0.8 V corner down towards near-threshold and records,
// per voltage, the distribution's shape moments and every model's binning
// error reduction — showing where each modelling generation earns its
// keep. It is an extension experiment, not a paper artefact.

// VSweepPoint is one supply voltage's measurements.
type VSweepPoint struct {
	VDD       float64
	Skew      float64
	Kurtosis  float64
	Reduction map[fit.Model]float64
}

// VSweepResult is the full sweep for one characterisation point.
type VSweepResult struct {
	CellName string
	Points   []VSweepPoint
}

// VSweep characterises one NAND2 arc at one mid-grid slew–load point for
// each supply voltage and evaluates the comparison set.
func VSweep(cfg Config, vdds []float64) (VSweepResult, error) {
	cfg = cfg.WithDefaults()
	if len(vdds) == 0 {
		vdds = []float64{0.8, 0.7, 0.6, 0.55, 0.5}
	}
	ct, ok := cells.CellByName("NAND2")
	if !ok {
		return VSweepResult{}, fmt.Errorf("experiments: NAND2 missing")
	}
	arc := ct.Arcs()[0]
	grid := cells.DefaultGrid()
	slew, load := grid.Slews[3], grid.Loads[3]

	out := VSweepResult{CellName: arc.Label}
	for i, vdd := range vdds {
		corner := spice.TTCorner()
		corner.VDD = vdd
		rng := mc.NewRNG(cfg.Seed + uint64(i)*104729)
		res := arc.Elec.Characterize(corner, rng, cfg.Samples, slew, load)
		evals, _ := EvaluateModels(res.Delays, cfg.Models, cfg.FitOpts)
		m := stats.Moments(res.Delays)
		pt := VSweepPoint{
			VDD: vdd, Skew: m.Skewness, Kurtosis: m.Kurtosis,
			Reduction: make(map[fit.Model]float64, len(evals)),
		}
		base := evals[fit.ModelLVF].Metrics
		for mod, e := range evals {
			if e.Err != nil {
				continue
			}
			pt.Reduction[mod] = binning.Cap(binning.ErrorReduction(base.BinErr, e.Metrics.BinErr), cfg.Cap)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// RenderVSweep prints the sweep table.
func RenderVSweep(r VSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Supply sweep (%s): delay-shape moments and binning error reduction vs LVF\n", r.CellName)
	fmt.Fprintf(&b, "%6s %7s %7s %8s %8s %8s %8s\n", "VDD", "skew", "kurt", "LVF2", "Norm2", "LESN", "LVF")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6.2f %7.2f %7.2f %8.2f %8.2f %8.2f %8.2f\n",
			p.VDD, p.Skew, p.Kurtosis,
			p.Reduction[fit.ModelLVF2], p.Reduction[fit.ModelNorm2],
			p.Reduction[fit.ModelLESN], p.Reduction[fit.ModelLVF])
	}
	return b.String()
}
