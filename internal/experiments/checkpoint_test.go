package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lvf2/internal/checkpoint"
	"lvf2/internal/faultinject"
	"lvf2/internal/fit"
)

// cancelWhenResolved cancels ctx once the journal holds at least n
// terminal records — a deterministic-enough mid-run kill point.
func cancelWhenResolved(j *checkpoint.Journal, n int, cancel context.CancelFunc, stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			resolved := 0
			for _, rec := range j.Records() {
				if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
					resolved++
				}
			}
			if resolved >= n {
				cancel()
				return
			}
		}
	}()
}

func TestTable1CheckpointResume(t *testing.T) {
	cfg := Config{Samples: 1500, Workers: 2}
	golden, err := Table1(cfg)
	if err != nil {
		t.Fatalf("golden Table1: %v", err)
	}

	fsys := faultinject.NewMemFS()
	fp := cfg.Table1Fingerprint()
	j, err := checkpoint.Open(fsys, "ckpt", fp, checkpoint.Options{FlushEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	cancelWhenResolved(j, 1, cancel, stop)
	icfg := cfg
	icfg.Checkpoint = j
	_, ierr := Table1Ctx(ctx, icfg)
	close(stop)
	j.Close()
	// The kill may land after the last unit; both shapes are legal, but
	// the journal must hold at least the record that triggered it.

	j2, err := checkpoint.Open(fsys, "ckpt", fp, checkpoint.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if j2.Stats().Resolved == 0 {
		t.Fatalf("nothing journaled before the kill (run err %v)", ierr)
	}
	rcfg := cfg
	rcfg.Checkpoint = j2
	rows, err := Table1Ctx(context.Background(), rcfg)
	if err != nil {
		t.Fatalf("resumed Table1: %v", err)
	}
	if len(rows) != len(golden) {
		t.Fatalf("row count %d vs %d", len(rows), len(golden))
	}
	restored := 0
	for i, r := range rows {
		if !reflect.DeepEqual(r.BinReduction, golden[i].BinReduction) {
			t.Errorf("scenario %s: resumed reductions %v != golden %v",
				r.Scenario.Name, r.BinReduction, golden[i].BinReduction)
		}
		if r.Restored {
			restored++
			if r.Golden != nil || r.Evals != nil {
				t.Errorf("restored row %s carries recomputed curves", r.Scenario.Name)
			}
		}
	}
	if restored == 0 {
		t.Error("no row restored from the journal")
	}
}

func TestTable2CheckpointResume(t *testing.T) {
	cfg := Table2Config{
		Config:      Config{Samples: 400, Workers: 4},
		ArcsPerType: 1,
		GridStride:  4,
	}
	golden, err := Table2(cfg)
	if err != nil {
		t.Fatalf("golden Table2: %v", err)
	}

	fsys := faultinject.NewMemFS()
	fp := cfg.Table2Fingerprint()
	j, err := checkpoint.Open(fsys, "ckpt", fp, checkpoint.Options{FlushEvery: 8})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	cancelWhenResolved(j, 40, cancel, stop)
	icfg := cfg
	icfg.Checkpoint = j
	_, ierr := Table2Ctx(ctx, icfg)
	close(stop)
	j.Close()

	j2, err := checkpoint.Open(fsys, "ckpt", fp, checkpoint.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if j2.Stats().Resolved == 0 {
		t.Fatalf("nothing journaled before the kill (run err %v)", ierr)
	}
	rcfg := cfg
	rcfg.Checkpoint = j2
	rows, err := Table2Ctx(context.Background(), rcfg)
	if err != nil {
		t.Fatalf("resumed Table2: %v", err)
	}
	if len(rows) != len(golden) {
		t.Fatalf("row count %d vs %d", len(rows), len(golden))
	}
	for i, r := range rows {
		g := golden[i]
		for name, pair := range map[string][2]map[fit.Model]float64{
			"delay-bin":   {r.DelayBin, g.DelayBin},
			"trans-bin":   {r.TransBin, g.TransBin},
			"delay-yield": {r.DelayYield, g.DelayYield},
			"trans-yield": {r.TransYield, g.TransYield},
		} {
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Errorf("%s %s: resumed %v != golden %v", r.Cell, name, pair[0], pair[1])
			}
		}
	}
}

func TestTable1FingerprintSensitivity(t *testing.T) {
	a := Config{Samples: 100}.Table1Fingerprint()
	b := Config{Samples: 200}.Table1Fingerprint()
	if a == b {
		t.Error("sample count not part of the Table 1 fingerprint")
	}
	c := Config{Samples: 100, Seed: 9}.Table1Fingerprint()
	if a == c {
		t.Error("seed not part of the Table 1 fingerprint")
	}
}

func TestReductionsCodecRoundtrip(t *testing.T) {
	vals := map[fit.Model][2]float64{
		fit.ModelLVF2:  {1.25, 3.5},
		fit.ModelNorm2: {0.5, -2},
		fit.ModelLVF:   {1, 0},
	}
	got, err := decodeReductions2(encodeReductions2(vals))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Errorf("roundtrip %v != %v", got, vals)
	}

	one := map[fit.Model]float64{fit.ModelLESN: 7.75}
	got1, err := decodeReductions1(encodeReductions1(one))
	if err != nil {
		t.Fatalf("decode1: %v", err)
	}
	if !reflect.DeepEqual(got1, one) {
		t.Errorf("roundtrip1 %v != %v", got1, one)
	}

	if _, err := decodeReductions2([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := decodeReductions2([]byte{5, 0, 0, 0, 9}); err == nil {
		t.Error("length-mismatched payload accepted")
	}
}
