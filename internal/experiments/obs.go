package experiments

import (
	"time"

	"lvf2/internal/fit"
	"lvf2/internal/obs"
)

// Experiment-driver metrics live in the process-wide default registry, so
// any embedder that serves /metrics (lvf2d writes obs.Default() alongside
// its own registry) can watch long Table 1/Table 2 runs progress: fits
// performed per model, fit latency, and units of work completed.
var (
	fitTotal = obs.NewCounterVec(obs.Default(),
		"lvf2_experiment_fits_total", "model fits performed by experiment drivers", "model")
	fitSeconds = obs.NewHistogram(obs.Default(),
		"lvf2_experiment_fit_seconds", "wall time per model fit", nil)
	scenariosTotal = obs.NewCounter(obs.Default(),
		"lvf2_experiment_scenarios_total", "Table 1 scenarios evaluated")
	arcsTotal = obs.NewCounter(obs.Default(),
		"lvf2_experiment_arcs_total", "Table 2 arc distributions fitted")
)

// observeFit records one model fit in the driver metrics.
func observeFit(m fit.Model, start time.Time) {
	fitTotal.Inc(m.String())
	fitSeconds.Observe(time.Since(start).Seconds())
}
