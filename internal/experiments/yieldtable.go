package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
	"lvf2/internal/stats"
	"lvf2/internal/yield"
)

// Yield-vs-sigma study: the paper's headline use of the timing model is
// yield estimation, but the interesting clocks sit 4σ–5σ out where plain
// Monte Carlo stops resolving anything. This table runs the whole
// estimator ladder of internal/yield at each sigma target on one
// golden-model arc and reports what each rung achieved under the same CI
// contract — the narrative companion to BENCH_yield.json.

// YieldRow is one (sigma, estimator) cell of the study.
type YieldRow struct {
	Sigma     float64
	Estimator string
	Result    yield.Result
	// Projected is the estimated sample count needed to close the CI
	// contract (equal to Result.Samples when it actually closed).
	Projected float64
}

// YieldTableResult is the full sweep for one arc.
type YieldTableResult struct {
	ArcLabel  string
	Slew      float64
	Load      float64
	GoldenMu  float64
	GoldenStd float64
	Contract  yield.Contract
	Rows      []YieldRow
}

// YieldVsSigma characterises one INV arc at a mid-grid point to fix the
// golden delay moments, then runs every estimator at each sigma target.
// The context bounds each individual estimate (a cancelled run reports
// its partial answer with Converged=false, like the serving path).
func YieldVsSigma(ctx context.Context, cfg Config, sigmas []float64, contract yield.Contract) (YieldTableResult, error) {
	cfg = cfg.WithDefaults()
	if len(sigmas) == 0 {
		sigmas = []float64{3, 4, 5}
	}
	ct, ok := cells.CellByName("INV")
	if !ok {
		return YieldTableResult{}, fmt.Errorf("experiments: INV missing")
	}
	arc := ct.Arcs()[0]
	grid := cells.DefaultGrid()
	slew, load := grid.Slews[3], grid.Loads[3]
	corner := spice.TTCorner()

	res := arc.Elec.Characterize(corner, mc.NewRNG(cfg.Seed+0xfeed), cfg.Samples, slew, load)
	m := stats.Moments(res.Delays)
	std := math.Sqrt(m.Variance)

	out := YieldTableResult{
		ArcLabel: arc.Label, Slew: slew, Load: load,
		GoldenMu: m.Mean, GoldenStd: std, Contract: contract.WithDefaults(),
	}
	for _, sigma := range sigmas {
		spec := yield.FromArc(arc.Elec, corner, yield.MetricDelay, slew, load, m.Mean+sigma*std)
		for _, name := range yield.Names {
			est, err := yield.New(name)
			if err != nil {
				return out, err
			}
			r, err := est.Estimate(ctx, spec, contract)
			if err != nil {
				return out, fmt.Errorf("experiments: %s at %gσ: %w", name, sigma, err)
			}
			out.Rows = append(out.Rows, YieldRow{
				Sigma: sigma, Estimator: name, Result: r,
				Projected: yield.ProjectedSamples(r, contract),
			})
		}
	}
	return out, nil
}

// RenderYieldTable prints the sweep with a speedup column against the
// plain-MC row of the same sigma (projected when MC's budget capped it).
func RenderYieldTable(r YieldTableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rare-event yield vs sigma (%s, slew %.5f ns, load %.5f pF; golden μ=%.4f σ=%.5f)\n",
		r.ArcLabel, r.Slew, r.Load, r.GoldenMu, r.GoldenStd)
	fmt.Fprintf(&b, "CI contract: ±%.3g relative at %.0f%% confidence, budget %d samples\n",
		r.Contract.RelErr, 100*r.Contract.Level, r.Contract.MaxSamples)
	fmt.Fprintf(&b, "%5s %5s %12s %9s %10s %12s %5s %8s\n",
		"sigma", "est", "failprob", "ci-rel", "samples", "to-target", "conv", "speedup")
	mcProjected := map[float64]float64{}
	for _, row := range r.Rows {
		if row.Estimator == "mc" {
			mcProjected[row.Sigma] = row.Projected
		}
	}
	for _, row := range r.Rows {
		rel := "-"
		if !math.IsInf(row.Result.RelHalfWidth, 1) {
			rel = fmt.Sprintf("%.4f", row.Result.RelHalfWidth)
		}
		speedup := "-"
		if base := mcProjected[row.Sigma]; row.Estimator != "mc" && base > 0 && row.Projected > 0 {
			speedup = fmt.Sprintf("%.0fx", base/row.Projected)
		}
		fmt.Fprintf(&b, "%5.1f %5s %12.4g %9s %10d %12.3g %5v %8s\n",
			row.Sigma, row.Estimator, row.Result.FailProb, rel,
			row.Result.Samples, row.Projected, row.Result.Converged, speedup)
	}
	return b.String()
}
