package experiments

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lvf2/internal/checkpoint"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
)

// Checkpoint plumbing for the experiment drivers: the config
// fingerprints that gate journal reuse, and the payload codecs that
// carry a unit's error-reduction values across a restart. Values are
// stored as raw IEEE-754 bits, so a restored row is bit-identical to
// the one an uninterrupted run would have produced.

// Table1Fingerprint identifies a Table 1 run for journal reuse. The
// scenario set is part of the library identity: resuming a journal
// against a different scenario list would misattribute rows.
func (c Config) Table1Fingerprint() checkpoint.Fingerprint {
	c = c.WithDefaults()
	scenarios, _ := spice.Scenarios()
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.Name
	}
	return checkpoint.Fingerprint{
		Library:    fmt.Sprintf("experiments/table1/%v", names),
		Seed:       c.Seed,
		Samples:    c.Samples,
		GridStride: 1,
		Options:    fmt.Sprintf("models=%v|cap=%g", c.Models, c.Cap),
	}
}

// Table2Fingerprint identifies a Table 2 sweep for journal reuse.
func (c Table2Config) Table2Fingerprint() checkpoint.Fingerprint {
	c = c.WithDefaults()
	return checkpoint.Fingerprint{
		Library:    fmt.Sprintf("experiments/table2/arcs=%d", c.ArcsPerType),
		Seed:       c.Seed,
		Samples:    c.Samples,
		GridStride: c.GridStride,
		Options:    fmt.Sprintf("models=%v|cap=%g", fit.AllModels, c.Cap),
	}
}

// encodeReductions1 serialises a Table 1 row's per-model bin reductions
// (sorted by model id, so equal maps encode to equal bytes).
func encodeReductions1(vals map[fit.Model]float64) []byte {
	wide := make(map[fit.Model][2]float64, len(vals))
	for m, v := range vals {
		wide[m] = [2]float64{v, 0}
	}
	return encodeReductions2(wide)
}

func decodeReductions1(b []byte) (map[fit.Model]float64, error) {
	wide, err := decodeReductions2(b)
	if err != nil {
		return nil, err
	}
	out := make(map[fit.Model]float64, len(wide))
	for m, v := range wide {
		out[m] = v[0]
	}
	return out, nil
}

// encodeReductions2 serialises a Table 2 unit's per-model [bin, yield]
// reduction pair.
func encodeReductions2(vals map[fit.Model][2]float64) []byte {
	models := make([]fit.Model, 0, len(vals))
	for m := range vals {
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return models[i] < models[j] })
	b := make([]byte, 0, 4+len(models)*(4+16))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(models)))
	for _, m := range models {
		b = binary.LittleEndian.AppendUint32(b, uint32(m))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(vals[m][0]))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(vals[m][1]))
	}
	return b
}

func decodeReductions2(b []byte) (map[fit.Model][2]float64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("short reductions payload (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+n*20 {
		return nil, fmt.Errorf("reductions payload: %d entries do not fit %d bytes", n, len(b))
	}
	out := make(map[fit.Model][2]float64, n)
	for i := 0; i < n; i++ {
		off := 4 + i*20
		m := fit.Model(binary.LittleEndian.Uint32(b[off:]))
		out[m] = [2]float64{
			math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:])),
			math.Float64frombits(binary.LittleEndian.Uint64(b[off+12:])),
		}
	}
	return out, nil
}
