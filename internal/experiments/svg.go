package experiments

import (
	"fmt"
	"strings"

	"lvf2/internal/fit"
	"lvf2/internal/plot"
)

// SVG renderers: turn the experiment results into standalone figures
// mirroring the paper's panels.

// Fig3SVGs renders one PDF-comparison chart per scenario, keyed by a
// filename-safe scenario slug.
func Fig3SVGs(rows []ScenarioResult, points int) map[string]string {
	if points <= 1 {
		points = 240
	}
	out := make(map[string]string, len(rows))
	for _, r := range rows {
		if r.Golden == nil {
			continue // restored from a checkpoint: no fitted curves to plot
		}
		lo := r.Golden.QuantileValue(0.001)
		hi := r.Golden.QuantileValue(0.999)
		span := hi - lo
		lo -= 0.08 * span
		hi += 0.08 * span
		step := (hi - lo) / float64(points-1)
		xs := make([]float64, points)
		for i := range xs {
			xs[i] = lo + float64(i)*step
		}
		mk := func(f func(float64) float64) []float64 {
			ys := make([]float64, points)
			for i, x := range xs {
				ys[i] = f(x)
			}
			return ys
		}
		chart := plot.LineChart{
			Title:  "Fig 3: " + r.Scenario.Name,
			XLabel: "delay (ns)",
			YLabel: "probability density",
			Series: []plot.Series{
				{Name: "golden", X: xs, Y: mk(r.Golden.PDF), Color: "#999999"},
			},
		}
		for _, m := range []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLESN, fit.ModelLVF} {
			e, ok := r.Evals[m]
			if !ok || e.Err != nil || e.Dist == nil {
				continue
			}
			chart.Series = append(chart.Series, plot.Series{
				Name: m.String(), X: xs, Y: mk(e.Dist.PDF),
				Dashed: m == fit.ModelLVF,
			})
		}
		slug := strings.ToLower(strings.ReplaceAll(r.Scenario.Name, " ", "_"))
		out[slug] = chart.SVG()
	}
	return out
}

// Fig4SVGs renders the two heat maps of Fig. 4.
func Fig4SVGs(r Fig4Result) (delay, trans string) {
	xt := make([]string, len(r.Grid.Slews))
	for i := range xt {
		xt[i] = fmt.Sprintf("sw%d", i+1)
	}
	yt := make([]string, len(r.Grid.Loads))
	for j := range yt {
		yt[j] = fmt.Sprintf("cap%d", j+1)
	}
	// Values[row=load][col=slew], as the paper draws it.
	mk := func(m [][]float64, title string) string {
		vals := make([][]float64, len(r.Grid.Loads))
		for j := range vals {
			vals[j] = make([]float64, len(r.Grid.Slews))
			for i := range r.Grid.Slews {
				vals[j][i] = m[i][j]
			}
		}
		return plot.Heatmap{
			Title: title, XLabel: "input slew", YLabel: "output load",
			XTicks: xt, YTicks: yt, Values: vals,
		}.SVG()
	}
	return mk(r.DelayRed, fmt.Sprintf("Fig 4(a): %s delay, LVF2 CDF-RMSE reduction (x)", r.CellName)),
		mk(r.TransRed, fmt.Sprintf("Fig 4(b): %s transition, LVF2 CDF-RMSE reduction (x)", r.CellName))
}

// Fig5SVG renders one path's reduction curves on a log axis.
func Fig5SVG(r Fig5Result) string {
	chart := plot.LineChart{
		Title:  "Fig 5: " + r.PathName,
		XLabel: "path depth (FO4)",
		YLabel: "binning error reduction (x)",
		LogY:   true,
	}
	for _, m := range []fit.Model{fit.ModelLVF2, fit.ModelNorm2, fit.ModelLESN, fit.ModelLVF} {
		xs := make([]float64, len(r.Points))
		ys := make([]float64, len(r.Points))
		for i, p := range r.Points {
			xs[i] = p.FO4
			ys[i] = p.Reduction[m]
		}
		chart.Series = append(chart.Series, plot.Series{
			Name: m.String(), X: xs, Y: ys, Dashed: m == fit.ModelLVF,
		})
	}
	return chart.SVG()
}
