package experiments

import (
	"context"
	"strings"
	"testing"

	"lvf2/internal/yield"
)

func TestYieldVsSigma(t *testing.T) {
	if testing.Short() {
		t.Skip("estimator sweep is seconds-scale")
	}
	cfg := Config{Samples: 4000}
	contract := yield.Contract{RelErr: 0.1, MaxSamples: 1 << 18}
	res, err := YieldVsSigma(context.Background(), cfg, []float64{3}, contract)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(yield.Names) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(yield.Names))
	}
	var mcRow, mnisRow *YieldRow
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Result.Samples <= 0 {
			t.Fatalf("%s spent no samples", r.Estimator)
		}
		switch r.Estimator {
		case "mc":
			mcRow = r
		case "mnis":
			mnisRow = r
		}
	}
	if mcRow == nil || mnisRow == nil {
		t.Fatal("missing estimator rows")
	}
	if !mnisRow.Result.Converged {
		t.Fatalf("mnis should close a 10%% contract at 3σ: %+v", mnisRow.Result)
	}
	// The two rungs must agree on the tail they are both measuring.
	lo, hi := mnisRow.Result.CI.Lo/3, mnisRow.Result.CI.Hi*3
	if p := mcRow.Result.FailProb; mcRow.Result.Converged && (p < lo || p > hi) {
		t.Fatalf("mc %g vs mnis CI [%g, %g]", p, mnisRow.Result.CI.Lo, mnisRow.Result.CI.Hi)
	}
	table := RenderYieldTable(res)
	for _, frag := range []string{"sigma", "mnis", "speedup", "CI contract"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("rendered table missing %q:\n%s", frag, table)
		}
	}
}
