package lvf2

import (
	"lvf2/internal/cells"
	"lvf2/internal/core"
	"lvf2/internal/fit"
)

// Extensions beyond the paper's headline model: the k-component mixture
// the paper's §3.3 invites, the LN/LSN prior-generation comparators, the
// pattern-guided adaptive characterisation it anticipates as future work,
// and frequency-domain binning.

// The prior-generation log-domain comparator models (paper refs [5], [6]).
const (
	KindLN  = fit.ModelLN  // log-normal (Keller 2014)
	KindLSN = fit.ModelLSN // log-skew-normal (Balef 2016)
)

// ExtendedModelKinds lists the paper's four models plus LN and LSN.
func ExtendedModelKinds() []ModelKind {
	out := make([]ModelKind, len(fit.ExtendedModels))
	copy(out, fit.ExtendedModels)
	return out
}

// MixModel is the k-component generalisation of Model (§3.3's "more
// components by similar naming conventions").
type MixModel = core.MixModel

// FitMix fits a k-component skew-normal mixture (k ≥ 1) by EM.
func FitMix(samples []float64, k int, o FitOptions) (MixModel, error) {
	return core.FitMixModel(samples, k, o)
}

// AdaptiveCharConfig controls the two-pass pattern-guided
// characterisation (§4.3 future work).
type AdaptiveCharConfig = cells.AdaptiveConfig

// AdaptiveAllocation is one grid point's pilot score and sample budget.
type AdaptiveAllocation = cells.AdaptiveAllocation

// PlanAdaptiveCharacterization runs the pilot pass and returns the sample
// budget per grid point, reinforced along the slew–load diagonals of the
// paper's accuracy pattern.
func PlanAdaptiveCharacterization(cfg AdaptiveCharConfig, arc CellArc) []AdaptiveAllocation {
	return cells.PlanAdaptive(cfg, arc)
}

// AdaptiveCharacterizeArc runs the full two-pass characterisation.
func AdaptiveCharacterizeArc(cfg AdaptiveCharConfig, arc CellArc) ([]TimingDistribution, []AdaptiveAllocation) {
	return cells.AdaptiveCharacterizeArc(cfg, arc)
}
