module lvf2

go 1.22
