package lvf2

import (
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
	"lvf2/internal/sta"
)

// Netlist + STA support: parse gate-level Verilog and run block-based
// statistical timing against a Liberty library.

// NetlistModule is a flat structural gate-level module.
type NetlistModule = netlist.Module

// STAOptions configures a statistical timing run.
type STAOptions = sta.Options

// STAResult holds per-net nominal and statistical arrivals.
type STAResult = sta.Result

// SemanticLibrary is the typed view of a parsed Liberty library.
type SemanticLibrary = liberty.Library

// ParseNetlist reads one structural Verilog module (modules, scalar
// ports, wires, named-connection instances).
func ParseNetlist(src string) (*NetlistModule, error) { return netlist.Parse(src) }

// ChainNetlist builds an n-stage single-input-cell chain.
func ChainNetlist(name, cellType string, n int) *NetlistModule {
	return netlist.Chain(name, cellType, n)
}

// RippleCarryAdderNetlist builds the NAND2-decomposed carry chain of an
// n-bit ripple-carry adder (Fig. 5's first benchmark as a netlist).
func RippleCarryAdderNetlist(bits int) *NetlistModule {
	return netlist.RippleCarryAdder(bits)
}

// BufferTreeNetlist builds a balanced binary buffer tree.
func BufferTreeNetlist(depth int) *NetlistModule { return netlist.BufferTree(depth) }

// LoadSemanticLibrary converts a parsed Liberty group into the typed view
// an STA run consumes.
func LoadSemanticLibrary(g *LibertyGroup) (*SemanticLibrary, error) {
	return liberty.LoadLibrary(g)
}

// RunSTA analyses a netlist against a library, propagating nominal timing
// plus the LVF and LVF² statistical views.
func RunSTA(lib *SemanticLibrary, m *NetlistModule, o STAOptions) (*STAResult, error) {
	return sta.Run(lib, m, o)
}
