package lvf2

import (
	"io"

	"lvf2/internal/liberty"
)

// Liberty file support: the facade re-exports the parser/writer and the
// LVF/LVF² attribute binding of the paper's §3.3.

// LibertyGroup is a parsed Liberty group statement.
type LibertyGroup = liberty.Group

// LibertyTable is a Liberty lookup table (index_1 × index_2 values).
type LibertyTable = liberty.Table

// TimingTables binds the nominal, LVF and LVF² tables of one timing
// quantity (cell_rise, cell_fall, rise_transition or fall_transition).
type TimingTables = liberty.TimingModel

// ParseLiberty parses Liberty text.
func ParseLiberty(src string) (*LibertyGroup, error) { return liberty.Parse(src) }

// ParseLibertyFile parses a .lib file from disk.
func ParseLibertyFile(path string) (*LibertyGroup, error) { return liberty.ParseFile(path) }

// ParseLibertyReader parses Liberty text from a reader.
func ParseLibertyReader(r io.Reader) (*LibertyGroup, error) { return liberty.ParseReader(r) }

// ExtractTimingTables pulls one base quantity's tables out of a timing()
// group, applying the LVF² inheritance defaults (absent LVF² tables fall
// back to the classic LVF ones; λ defaults to zero per eq. 10).
func ExtractTimingTables(timing *LibertyGroup, base string) (*TimingTables, error) {
	return liberty.ExtractTimingModel(timing, base)
}

// TimingTablesFromModels builds the Liberty table set from a grid of
// fitted LVF² models plus the nominal value grid.
func TimingTablesFromModels(base string, index1, index2 []float64, nominal [][]float64, models [][]Model) *TimingTables {
	return liberty.TimingModelFromFits(base, index1, index2, nominal, models)
}

// LintIssue is one finding of the Liberty sanity checker.
type LintIssue = liberty.LintIssue

// LintLibrary checks a parsed library for the structural and statistical
// problems that silently corrupt SSTA (table-shape mismatches, weights
// outside [0,1], negative sigmas, missing arcs, dangling templates).
func LintLibrary(g *LibertyGroup) []LintIssue { return liberty.Lint(g) }

// LintHasErrors reports whether any finding is an error (vs warning).
func LintHasErrors(issues []LintIssue) bool { return liberty.HasErrors(issues) }
