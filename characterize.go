package lvf2

import (
	"lvf2/internal/cells"
	"lvf2/internal/circuits"
	"lvf2/internal/spice"
)

// Characterisation support: the synthetic standard-cell library and
// variation-aware electrical model that substitute for the paper's
// TSMC 22nm + HSPICE Monte-Carlo flow.

// CellType is one of the 25 standard combinational cell types.
type CellType = cells.CellType

// CellArc is one concrete timing arc of a cell.
type CellArc = cells.Arc

// CharConfig controls a Monte-Carlo characterisation run.
type CharConfig = cells.CharConfig

// TimingDistribution is one characterised (arc, slew, load, kind) sample
// set.
type TimingDistribution = cells.Distribution

// SlewLoadGrid is the 8×8 characterisation grid.
type SlewLoadGrid = cells.Grid

// DistKind distinguishes delay from transition distributions.
type DistKind = cells.Kind

// The two characterised quantities.
const (
	DelayKind      = cells.Delay
	TransitionKind = cells.Transition
)

// Corner is the PVT corner and variation magnitudes of the electrical
// model.
type Corner = spice.Corner

// CircuitPath is a benchmark critical path for SSTA validation.
type CircuitPath = circuits.Path

// StandardCells returns the 25-type library with the paper's arc counts.
func StandardCells() []CellType { return cells.Library() }

// CellByName finds a cell type in the library.
func CellByName(name string) (CellType, bool) { return cells.CellByName(name) }

// DefaultGrid returns the paper's 8×8 slew–load grid.
func DefaultGrid() SlewLoadGrid { return cells.DefaultGrid() }

// TTCorner returns the paper's evaluation corner (0.8 V, 25 °C,
// TTGlobal_LocalMC).
func TTCorner() Corner { return spice.TTCorner() }

// CharacterizeArc Monte-Carlo-characterises one arc over the grid,
// returning a delay and a transition distribution per visited point.
func CharacterizeArc(cfg CharConfig, arc CellArc) []TimingDistribution {
	return cells.CharacterizeArc(cfg, arc)
}

// CarryAdder16 builds the ≈30-FO4 critical path of a 16-bit ripple-carry
// adder (the paper's first path benchmark).
func CarryAdder16(corner Corner) CircuitPath { return circuits.CarryAdder16(corner) }

// HTree6 builds the ≈95-FO4 six-stage H-tree clock path (the paper's
// second path benchmark).
func HTree6(corner Corner) CircuitPath { return circuits.HTree6(corner) }

// FO4Chain builds a uniform fanout-of-4 inverter chain with a controlled
// degree of bimodality (biasSigma = 0 is maximally bimodal).
func FO4Chain(n int, biasSigma float64) CircuitPath { return circuits.FO4Chain(n, biasSigma) }

// FO4Delay returns the library's fanout-of-4 inverter delay at the
// corner, or an error when the library lacks the INV cell.
func FO4Delay(corner Corner) (float64, error) { return circuits.FO4Delay(corner) }
