GO ?= go

.PHONY: all build test vet race check fuzz bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# The gate: vet + build + full suite under the race detector.
check: vet build race

# Short fuzz pass over the Liberty parser targets.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s -run '^$$' ./internal/liberty/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s -run '^$$' ./internal/liberty/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
