GO ?= go

.PHONY: all build test vet race check chaos chaos-ckpt chaos-dist chaos-replica chaos-churn fuzz bench bench-tables bench-server bench-charwork bench-charlib bench-yield bench-smoke allocbudget determinism clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# Allocation-budget regression tests (testing.AllocsPerRun; skipped under
# -race, so they get their own invocation).
allocbudget:
	$(GO) test -run 'AllocBudget' -count 1 ./internal/fit/

# Bit-identical serial-vs-parallel multi-start — and bit-identical
# warm-started library builds across worker counts — under the race
# detector and several GOMAXPROCS values so the concurrent paths engage.
determinism:
	$(GO) test -race -cpu 1,4,8 -run 'TestFitLVF2ParallelDeterminism|TestFitLVF2Golden|TestFitLVF2SeededDeterminism' -count 1 ./internal/fit/
	$(GO) test -race -cpu 1,4,8 -run 'TestBuildWarmDeterminismAcrossWorkers' -count 1 -timeout 15m ./internal/libbuild/
	$(GO) test -race -cpu 1,4,8 -run 'TestYieldEstimatorDeterminism' -count 1 ./internal/yield/

# Crash-safety chaos suite: randomized seeded fault scripts (disk faults,
# fit outages, snapshot corruption, kill-and-restart) against lvf2d under
# the race detector. A failing script is written to CHAOS_ARTIFACT_DIR as
# chaos-failure-seed-<seed>.json; replay it with -chaos.seed=<seed>.
CHAOS_SEEDS ?= 8
CHAOS_ARTIFACT_DIR ?= $(CURDIR)/chaos-artifacts

chaos:
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -run TestChaosServing -count 1 -timeout 15m \
		./internal/server/ -chaos.seeds $(CHAOS_SEEDS)

# Kill-and-resume chaos suite for the checkpointed characterisation
# pipeline: seeded scripts kill a library build mid-run, optionally tear
# or rot the journal, and assert the resumed build is bit-identical to
# an uninterrupted one. A failing script plus the journal segments it
# resumed from land in CHAOS_ARTIFACT_DIR; replay with -ckptchaos.seed.
chaos-ckpt:
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -run TestChaosCheckpointResume -count 1 -timeout 15m \
		./internal/libbuild/ -ckptchaos.seeds $(CHAOS_SEEDS)

# Distributed characterisation chaos suite: seeded schedules kill workers
# and crash-restart the coordinator while every HTTP exchange runs through
# a seeded fault transport (request errors, dropped responses, corrupt and
# truncated bodies, stalls). Asserts the drained journal assembles a .lib
# bit-identical to a single-process build and that no unit is journaled
# terminal twice. Failing scripts, logs and journal segments land in
# CHAOS_ARTIFACT_DIR; replay with -distchaos.seed=<seed>.
chaos-dist:
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -run TestChaosDistributedBuild -count 1 -timeout 15m \
		./internal/dist/ -distchaos.seeds $(CHAOS_SEEDS)

# Replicated-serving chaos suite: seeded scripts drive a three-replica
# in-process lvf2d fleet through peer-link faults (refused connections,
# dropped/corrupt/truncated responses, stalls, asymmetric partitions)
# plus kill-and-restart, asserting every client response is a 200
# bit-identical to a single-process oracle and that a restarted replica
# warm-seeds ≥90% of its owned keys from its peers. Failing scripts land
# in CHAOS_ARTIFACT_DIR as replchaos-failure-seed-<seed>.json; replay
# with -replchaos.seed=<seed>.
chaos-replica:
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -run TestChaosReplicatedServing -count 1 -timeout 15m \
		./internal/server/ -replchaos.seeds $(CHAOS_SEEDS)

# Fleet-churn chaos suite: seeded scripts reshape a live lvf2d fleet —
# graceful joins, graceful drains with key handoff, crash-leaves with an
# operator epoch bump, kill-and-restart — while client traffic flows over
# faulty peer links. Asserts every response across every epoch is a 200
# bit-identical to a single-process oracle, that every live replica
# serves ≥90% of its owned keys warm within one anti-entropy round of
# each rebalance, and that the fleet converges on one epoch. Failing
# scripts land in CHAOS_ARTIFACT_DIR as
# churnchaos-failure-seed-<seed>.json; replay with -churnchaos.seed.
chaos-churn:
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) \
		$(GO) test -race -run TestChaosFleetChurn -count 1 -timeout 15m \
		./internal/server/ -churnchaos.seeds $(CHAOS_SEEDS)

# One iteration of every benchmark in -short mode: benchmark code cannot
# rot between perf PRs (heavy benches shrink their workload under -short;
# this smokes the code paths, it does not measure).
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x -timeout 20m ./...

# The gate: vet + build + full suite under the race detector + perf and
# crash-safety guards + the benchmark smoke pass.
check: vet build race allocbudget determinism chaos chaos-ckpt chaos-dist chaos-replica chaos-churn bench-smoke

# Short fuzz pass over the Liberty/netlist parsers and the journaled
# work-unit payload decoder.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s -run '^$$' ./internal/liberty/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s -run '^$$' ./internal/liberty/
	$(GO) test -fuzz FuzzParseNetlist -fuzztime 30s -run '^$$' ./internal/netlist/
	$(GO) test -fuzz FuzzDecodeUnit -fuzztime 30s -run '^$$' ./internal/libbuild/

# Micro benchmarks with memory stats, exported as BENCH_fit.json evidence.
BENCH_FILTER = BenchmarkFit|BenchmarkSNCDF|BenchmarkCharacterizeArc|BenchmarkSSTASum|BenchmarkLibertyParse

bench:
	$(GO) test -bench '$(BENCH_FILTER)' -benchmem -count 3 -run '^$$' -timeout 30m . \
		| $(GO) run ./cmd/benchjson -out BENCH_fit.json

# Warm-vs-cold lvf2d serving benchmarks over httptest (acceptance: warm
# /v1/arc/binning p50 ≥10x below cold), exported as BENCH_server.json.
bench-server:
	$(GO) test -bench 'BenchmarkServerBinning' -benchmem -count 3 -run '^$$' -timeout 10m ./internal/server/ \
		| $(GO) run ./cmd/benchjson -out BENCH_server.json

# Distributed characterisation scaling benchmark (acceptance: 4 workers
# drain the same build >=3x faster than 1), exported as BENCH_charwork.json.
bench-charwork:
	$(GO) test -bench 'BenchmarkCharWork' -benchmem -benchtime 3x -count 3 -run '^$$' -timeout 10m ./internal/dist/ \
		| $(GO) run ./cmd/benchjson -out BENCH_charwork.json

# Library characterisation throughput, warm-started vs cold (acceptance:
# warm cells/sec >= 2x cold), exported as BENCH_charlib.json.
bench-charlib:
	$(GO) test -bench 'BenchmarkCharLib' -benchmem -benchtime 1x -count 3 -run '^$$' -timeout 60m ./internal/libbuild/ \
		| $(GO) run ./cmd/benchjson -out BENCH_charlib.json

# Rare-event yield estimator ladder: samples-to-±1%-CI for MC/MNIS/AIS
# at 3σ/4σ/5σ (acceptance: MNIS and AIS close the 4σ contract with ≥50x
# fewer samples than plain MC needs, and produce a converged 5σ estimate
# inside a budget where plain MC cannot), exported as BENCH_yield.json.
bench-yield:
	$(GO) test -bench 'BenchmarkYield' -benchmem -benchtime 1x -count 3 -run '^$$' -timeout 60m ./internal/yield/ \
		| $(GO) run ./cmd/benchjson -out BENCH_yield.json

# Paper artefact regeneration benchmarks (tables, figures, ablations).
bench-tables:
	$(GO) test -bench 'BenchmarkTable|BenchmarkFig|BenchmarkAblation' -benchtime 1x -run '^$$' -timeout 30m .

clean:
	$(GO) clean ./...
