package lvf2

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at reduced scale and reports the headline numbers as custom
// benchmark metrics (x-reduction values), so `go test -bench .` doubles as
// the reproduction run. Paper-scale runs (50k samples, full grids) are
// reached through cmd/exptables flags.

import (
	"math"
	"strings"
	"testing"
	"time"

	"lvf2/internal/binning"
	"lvf2/internal/cells"
	"lvf2/internal/circuits"
	"lvf2/internal/experiments"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/mc"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
	"lvf2/internal/stats"
)

// ------------------------------------------------------- paper artefacts

// BenchmarkTable1 regenerates the five-scenario assessment (Table 1) and
// reports LVF²'s average binning error reduction.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Config{Samples: 4000, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range rows {
			avg += r.BinReduction[fit.ModelLVF2]
		}
		b.ReportMetric(avg/float64(len(rows)), "LVF2-x-reduction")
	}
}

// BenchmarkTable2 regenerates the standard-cell library sweep (Table 2,
// reduced: 1 arc per type, 2×2 grid) and reports the four average
// LVF² reductions.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Table2Config{
			Config:      experiments.Config{Samples: 2000, Seed: 42},
			ArcsPerType: 1,
			GridStride:  4,
		})
		if err != nil {
			b.Fatal(err)
		}
		db, tb, dy, ty := experiments.Table2Averages(rows)
		b.ReportMetric(db[fit.ModelLVF2], "delay-bin-x")
		b.ReportMetric(tb[fit.ModelLVF2], "trans-bin-x")
		b.ReportMetric(dy[fit.ModelLVF2], "delay-yield-x")
		b.ReportMetric(ty[fit.ModelLVF2], "trans-yield-x")
	}
}

// BenchmarkFig3 regenerates the fitted-PDF curves behind Fig. 3 (and the
// Fig. 1 concept panel) and reports the CSV size as a sanity metric.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Config{Samples: 4000, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		csv := experiments.Fig3CSV(rows, 100)
		b.ReportMetric(float64(strings.Count(csv, "\n")), "csv-rows")
	}
}

// BenchmarkFig4 regenerates the NAND2 slew–load accuracy-pattern heat map
// and reports the diagonal-pattern score (positive = the paper's diagonal
// regularity is present).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Fig4Config{
			Config: experiments.Config{Samples: 1500, Seed: 42},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.DiagonalScore(res.DelayRed), "diag-score-delay")
		b.ReportMetric(experiments.DiagonalScore(res.TransRed), "diag-score-trans")
	}
}

// BenchmarkFig5Adder regenerates the 16-bit carry-adder path study and
// reports LVF²'s reduction at 8 FO4 and at the last cell (the paper quotes
// 2× and 1.15×).
func BenchmarkFig5Adder(b *testing.B) {
	corner := spice.TTCorner()
	path := circuits.CarryAdder16(corner)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Config{Samples: 3000, Seed: 42}, path, corner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionAtFO4(fit.ModelLVF2, 8), "x-at-8FO4")
		b.ReportMetric(res.Points[len(res.Points)-1].Reduction[fit.ModelLVF2], "x-at-end")
	}
}

// BenchmarkFig5HTree regenerates the 6-stage H-tree path study (the paper
// quotes 8× at 8 FO4 and 2.68× at the end).
func BenchmarkFig5HTree(b *testing.B) {
	corner := spice.TTCorner()
	path := circuits.HTree6(corner)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Config{Samples: 3000, Seed: 42}, path, corner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionAtFO4(fit.ModelLVF2, 8), "x-at-8FO4")
		b.ReportMetric(res.Points[len(res.Points)-1].Reduction[fit.ModelLVF2], "x-at-end")
	}
}

// ------------------------------------------------------------- ablations

// BenchmarkAblationMStep compares the moment-based EM M-step against the
// Nelder–Mead MLE polish (DESIGN.md §5): same data, with and without
// polish, reporting the log-likelihood gap.
func BenchmarkAblationMStep(b *testing.B) {
	rng := mc.NewRNG(7)
	scs, err := spice.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	xs := scs[0].GoldenSamples(rng, 4000)
	for i := 0; i < b.N; i++ {
		plain, err := fit.FitLVF2(xs, fit.Options{})
		if err != nil {
			b.Fatal(err)
		}
		polished, err := fit.FitLVF2(xs, fit.Options{Polish: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(polished.LogLik-plain.LogLik, "loglik-gain")
	}
}

// BenchmarkAblationReduction compares SSTA propagation with the paper's
// 2-component representation against a 4-component variant (no final
// merge), reporting the binning-error ratio (≈1 means the 4→2 merge costs
// almost nothing).
func BenchmarkAblationReduction(b *testing.B) {
	corner := spice.TTCorner()
	path := circuits.FO4Chain(6, 0)
	stages := path.MCStages(corner, 3000, 21)
	for i := 0; i < b.N; i++ {
		run := func(maxComps int) float64 {
			r, err := fit.FitLVF2(stages[0].Samples, fit.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var acc ssta.Var = ssta.SNMixVar{
				Weights:  []float64{1 - r.Lambda, r.Lambda},
				Comps:    []stats.SkewNormal{r.C1, r.C2},
				MaxComps: maxComps,
			}
			cum := append([]float64(nil), stages[0].Samples...)
			for s := 1; s < len(stages); s++ {
				r, err := fit.FitLVF2(stages[s].Samples, fit.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sv := ssta.SNMixVar{
					Weights:  []float64{1 - r.Lambda, r.Lambda},
					Comps:    []stats.SkewNormal{r.C1, r.C2},
					MaxComps: maxComps,
				}
				acc, err = acc.Sum(sv)
				if err != nil {
					b.Fatal(err)
				}
				for k := range cum {
					cum[k] += stages[s].Samples[k]
				}
			}
			return binning.Evaluate(acc.Dist(), stats.NewEmpirical(cum)).BinErr
		}
		err2 := run(2)
		err4 := run(4)
		b.ReportMetric(err2/err4, "binerr-2comp-over-4comp")
	}
}

// BenchmarkAblationLHS measures the variance-reduction of Latin Hypercube
// sampling over IID sampling for a bin-probability estimator at equal
// budget (DESIGN.md §5).
func BenchmarkAblationLHS(b *testing.B) {
	e := cells.Library()[0].Arcs()[0].Elec
	corner := spice.TTCorner()
	for i := 0; i < b.N; i++ {
		const trials, n = 24, 512
		variance := func(lhs bool) float64 {
			var ests []float64
			for tr := 0; tr < trials; tr++ {
				rng := mc.NewRNG(uint64(1000 + tr))
				var pts [][]float64
				if lhs {
					pts = mc.GaussianLHS(rng, n, spice.NumParams)
				} else {
					pts = mc.GaussianIID(rng, n, spice.NumParams)
				}
				var mean float64
				for _, row := range pts {
					d, _ := e.Eval(corner, spice.ParamsFromVector(row), 0.02102, 0.04965)
					mean += d
				}
				ests = append(ests, mean/float64(n))
			}
			return stats.Moments(ests).Variance
		}
		vLHS := variance(true)
		vIID := variance(false)
		b.ReportMetric(vIID/vLHS, "iid-over-lhs-variance")
	}
}

// BenchmarkAblationAdaptive evaluates the paper's anticipated use of the
// accuracy pattern (§3.4, §4.3): decide per grid point whether the cheap
// LVF fit suffices (unimodal points) or the LVF² EM fit is needed
// (multi-Gaussian points), using the pilot bimodality score. Metrics:
// the binning-error ratio of the selective flow vs all-LVF² (≈1 means no
// accuracy loss) and its fitting-time speedup (>1 means time saved).
func BenchmarkAblationAdaptive(b *testing.B) {
	ct, _ := cells.CellByName("NAND2")
	arc := ct.Arcs()[0]
	arc.Elec.DiagOffset = 0
	arc.Elec.ModeGap = 0.25
	cfg := cells.CharConfig{Samples: 2500, Seed: 404, GridStride: 2}
	dists := cells.CharacterizeArc(cfg, arc)

	for i := 0; i < b.N; i++ {
		var errAll, errSel float64
		var nPts int
		t0 := time.Now()
		for _, d := range dists {
			if d.Kind != cells.Delay {
				continue
			}
			r, err := fit.FitLVF2(d.Samples, fit.Options{})
			if err != nil {
				b.Fatal(err)
			}
			errAll += binning.Evaluate(r.Dist(), stats.NewEmpirical(d.Samples)).BinErr
			nPts++
		}
		tAll := time.Since(t0)

		t0 = time.Now()
		for _, d := range dists {
			if d.Kind != cells.Delay {
				continue
			}
			var dist stats.Dist
			m := stats.Moments(d.Samples)
			// LVF matches three moments exactly, so its residual error is
			// predicted by the fourth: compare the sample kurtosis with
			// the kurtosis the moment-matched SN implies. A mismatch
			// beyond sampling noise (SE ≈ √(24/n)) or a clamped skewness
			// routes the point to the LVF² fit.
			snImplied := stats.SNFromMoments(m.Mean, m.Std(), m.Skewness)
			kurtGap := math.Abs(m.Kurtosis - (snImplied.ExcessKurtosis() + 3))
			if kurtGap > 3*math.Sqrt(24/float64(m.N)) || math.Abs(m.Skewness) > stats.MaxSNSkewness {
				r, err := fit.FitLVF2(d.Samples, fit.Options{})
				if err != nil {
					b.Fatal(err)
				}
				dist = r.Dist()
			} else {
				r, err := fit.FitLVF(d.Samples)
				if err != nil {
					b.Fatal(err)
				}
				dist = r.Dist
			}
			errSel += binning.Evaluate(dist, stats.NewEmpirical(d.Samples)).BinErr
		}
		tSel := time.Since(t0)

		b.ReportMetric(errSel/errAll, "selective-over-all-binerr")
		b.ReportMetric(float64(tAll)/float64(tSel), "fit-time-speedup")
		_ = nPts
	}
}

// --------------------------------------------------------- micro benches

func benchSamples(n int) []float64 {
	rng := mc.NewRNG(3)
	scs, err := spice.Scenarios()
	if err != nil {
		panic(err) // bench fixture: definitions are compile-time constants
	}
	return scs[2].GoldenSamples(rng, n)
}

// BenchmarkFitLVF2 measures one EM fit of the paper's model.
func BenchmarkFitLVF2(b *testing.B) {
	xs := benchSamples(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.FitLVF2(xs, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitNorm2 measures the Gaussian-mixture comparator fit.
func BenchmarkFitNorm2(b *testing.B) {
	xs := benchSamples(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.FitNorm2(xs, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitLESN measures the LESN kurtosis-matching fit.
func BenchmarkFitLESN(b *testing.B) {
	xs := benchSamples(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.FitLESN(xs, fit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitLVF measures the baseline moment-match fit.
func BenchmarkFitLVF(b *testing.B) {
	xs := benchSamples(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.FitLVF(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSNCDF measures the Owen's-T-based skew-normal CDF.
func BenchmarkSNCDF(b *testing.B) {
	sn := stats.SNFromMoments(0.1, 0.01, 0.5)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += sn.CDF(0.095 + float64(i%16)*0.001)
	}
	_ = acc
}

// BenchmarkCharacterizeArc measures one MC characterisation point
// (2000 samples) of the electrical model.
func BenchmarkCharacterizeArc(b *testing.B) {
	e := cells.Library()[2].Arcs()[0].Elec
	corner := spice.TTCorner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := mc.NewRNG(uint64(i + 1))
		e.Characterize(corner, rng, 2000, 0.02102, 0.04965)
	}
}

// BenchmarkSSTASum measures one LVF² mixture Sum (pairwise convolution +
// 4→2 reduction).
func BenchmarkSSTASum(b *testing.B) {
	v := ssta.SNMixVar{
		Weights: []float64{0.7, 0.3},
		Comps: []stats.SkewNormal{
			stats.SNFromMoments(0.10, 0.005, 0.4),
			stats.SNFromMoments(0.13, 0.004, 0.3),
		},
		MaxComps: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Sum(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLibertyParse measures parsing a generated LVF² library.
func BenchmarkLibertyParse(b *testing.B) {
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{Name: "bench"}, "tpl",
		cells.DefaultGrid().Slews, cells.DefaultGrid().Loads)
	pin := liberty.AddCell(lib, "NAND2", []string{"A", "B"}, 0.0011, "ZN", "!(A & B)")
	timing := liberty.AddTiming(pin, "A", "negative_unate")
	grid := cells.DefaultGrid()
	nom := make([][]float64, 8)
	fits := make([][]Model, 8)
	for i := range nom {
		nom[i] = make([]float64, 8)
		fits[i] = make([]Model, 8)
		for j := range nom[i] {
			nom[i][j] = 0.1 + 0.01*float64(i+j)
			fits[i][j] = Model{
				Lambda: 0.2,
				Theta1: Theta{Mean: nom[i][j] + 0.002, Sigma: 0.004, Skew: 0.3},
				Theta2: Theta{Mean: nom[i][j] + 0.02, Sigma: 0.005, Skew: 0.1},
			}
		}
	}
	tm := liberty.TimingModelFromFits("cell_rise", grid.Slews, grid.Loads, nom, fits)
	tm.AppendTo(timing, "tpl", true)
	text := lib.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := liberty.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}
