// Speed binning and yield estimation (the paper's Fig. 2 economics):
// characterise a standard cell with the Monte-Carlo electrical model,
// fit LVF and LVF², sort the population into eight speed bins, and show
// how the single-Gaussian LVF misprices the product mix when the delay
// distribution is multi-Gaussian.
//
// Run with: go run ./examples/binning
package main

import (
	"fmt"
	"log"

	"lvf2"
	"lvf2/internal/mc"
	"lvf2/internal/stats"
)

func main() {
	// Find a visibly bimodal characterisation point: scan a few NAND2
	// arcs over a coarse grid and keep the delay distribution with the
	// lowest kurtosis (a 50/50 two-mode mixture is strongly platykurtic —
	// this is where the dual variation mechanisms are evenly matched).
	nand2, ok := lvf2.CellByName("NAND2")
	if !ok {
		log.Fatal("NAND2 not in library")
	}
	var best lvf2.TimingDistribution
	bestKurt := 1e9
	for _, arc := range nand2.Arcs() {
		scan := lvf2.CharacterizeArc(lvf2.CharConfig{Samples: 2000, GridStride: 2, Seed: 3}, arc)
		for _, d := range scan {
			if d.Kind != lvf2.DelayKind {
				continue
			}
			if k := stats.Moments(d.Samples).Kurtosis; k < bestKurt {
				bestKurt, best = k, d
			}
		}
	}
	// Re-characterise the chosen point with a production-size sample set.
	arc := best.Arc
	res := arc.Elec.Characterize(lvf2.TTCorner(), mc.NewRNG(99), 20000, best.Slew, best.Load)
	delays := res.Delays
	sm := stats.Moments(delays)
	fmt.Printf("characterised %s: %d samples, mean %.4f ns, σ %.4f ns, skew %.2f, kurtosis %.2f\n\n",
		arc.Label, sm.N, sm.Mean, sm.Std(), sm.Skewness, sm.Kurtosis)

	// The eight speed bins of the paper: boundaries at μ±3σ, ±2σ, ±σ, μ.
	bounds := lvf2.SigmaBoundaries(sm.Mean, sm.Std())

	// Chip prices per bin: faster bins sell higher; the fastest bin is
	// faulty (sub-threshold leakage, Fig. 2) and the slowest misses
	// timing — both price at zero.
	prices := []float64{0, 10, 9, 8, 6, 4, 2, 0}

	modelLVF2, err := lvf2.Fit(delays, lvf2.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	modelLVF, err := lvf2.FitLVF(delays)
	if err != nil {
		log.Fatal(err)
	}

	golden := lvf2.EmpiricalOf(delays)
	gProbs := lvf2.BinProbabilities(golden, bounds)
	p2 := lvf2.BinProbabilities(modelLVF2.Dist(), bounds)
	p1 := lvf2.BinProbabilities(modelLVF.Dist(), bounds)

	fmt.Println("bin   boundary(ns)   golden    LVF2     LVF     price")
	for i := range gProbs {
		var bLabel string
		if i < len(bounds) {
			bLabel = fmt.Sprintf("<%.4f", bounds[i])
		} else {
			bLabel = fmt.Sprintf(">%.4f", bounds[len(bounds)-1])
		}
		fmt.Printf("Bin%d  %-12s  %6.2f%%  %6.2f%%  %6.2f%%   $%g\n",
			i+1, bLabel, 100*gProbs[i], 100*p2[i], 100*p1[i], prices[i])
	}

	fmt.Printf("\nexpected revenue per chip:  golden $%.4f   LVF2 $%.4f   LVF $%.4f\n",
		lvf2.ExpectedRevenue(gProbs, prices),
		lvf2.ExpectedRevenue(p2, prices),
		lvf2.ExpectedRevenue(p1, prices))

	yG := lvf2.Yield3Sigma(golden, sm.Mean, sm.Std())
	y2 := lvf2.Yield3Sigma(modelLVF2.Dist(), sm.Mean, sm.Std())
	y1 := lvf2.Yield3Sigma(modelLVF.Dist(), sm.Mean, sm.Std())
	fmt.Printf("3σ-yield:  golden %.4f%%   LVF2 %.4f%%   LVF %.4f%%\n",
		100*yG, 100*y2, 100*y1)
	fmt.Printf("yield error reduction (eq. 12): %.1fx\n",
		lvf2.ErrorReduction(absDiff(y1, yG), absDiff(y2, yG)))
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
