// Path SSTA (the paper's §4.4): propagate all four statistical timing
// models along the 16-bit carry adder's critical path with block-based
// SSTA, compare each prefix against Monte-Carlo golden data, and watch the
// Central Limit Theorem erode LVF²'s advantage with logic depth.
//
// Run with: go run ./examples/ssta
package main

import (
	"fmt"
	"log"

	"lvf2"
)

func main() {
	corner := lvf2.TTCorner()
	path := lvf2.CarryAdder16(corner)
	fo4, err := lvf2.FO4Delay(corner)
	if err != nil {
		log.Fatal(err)
	}
	depth, err := path.FO4Depth(corner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d stages, %.1f FO4 deep (FO4 = %.4f ns)\n\n",
		path.Name, len(path.Stages), depth, fo4)

	// Monte-Carlo characterise every stage (independent local variation)
	// and run block-based SSTA for all four model families.
	stages := path.MCStages(corner, 4000, 1)
	results, err := lvf2.PropagateChain(stages, lvf2.AllModelKinds(), lvf2.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %6s  %28s  %s\n", "stage", "FO4", "binning error reduction vs LVF", "")
	fmt.Printf("%-12s %6s  %8s %8s %8s\n", "", "", "LVF2", "Norm2", "LESN")
	for i, r := range results {
		// Print a subset of stages to keep the table readable.
		if i != 0 && i != len(results)-1 && i%4 != 0 {
			continue
		}
		base := lvf2.EvaluateAgainst(r.Vars[lvf2.KindLVF].Dist(), r.Golden.Sorted())
		row := fmt.Sprintf("%-12s %6.1f ", r.Stage.Label, r.CumNominal/fo4)
		for _, k := range []lvf2.ModelKind{lvf2.KindLVF2, lvf2.KindNorm2, lvf2.KindLESN} {
			v, ok := r.Vars[k]
			if !ok {
				row += fmt.Sprintf(" %8s", "-")
				continue
			}
			m := lvf2.EvaluateAgainst(v.Dist(), r.Golden.Sorted())
			row += fmt.Sprintf(" %8.2f", lvf2.ErrorReduction(base.BinErr, m.BinErr))
		}
		fmt.Println(row)
	}

	// Theorem 1 (Berry–Esseen): the accumulated delay approaches Gaussian
	// at O(1/√n), which is why the reductions above decay towards 1.
	rho := lvf2.StageNonGaussianity(stages[0].Samples)
	fmt.Printf("\nstage non-Gaussianity ρ = %.3f\n", rho)
	for _, n := range []int{1, 4, 16, 34} {
		fmt.Printf("  Berry-Esseen bound after %2d stages: %.4f\n",
			n, lvf2.BerryEsseenBound(rho, n))
	}
}
