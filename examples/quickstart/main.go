// Quickstart: fit the LVF² statistical timing model to a bimodal delay
// distribution and compare it with the industry-standard LVF fit.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lvf2"
)

func main() {
	// A synthetic cell-delay Monte-Carlo population with two process
	// regimes: 70% of samples around 100 ps and 30% around 130 ps — the
	// "multi-Gaussian" shape that motivates LVF² (units: ns).
	rng := rand.New(rand.NewSource(7))
	draw := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			if rng.Float64() < 0.7 {
				xs[i] = 0.100 + 0.005*rng.NormFloat64()
			} else {
				xs[i] = 0.130 + 0.004*rng.NormFloat64()
			}
		}
		return xs
	}
	samples := draw(20000) // characterisation set (fit)
	holdout := draw(20000) // evaluation set (golden)

	// Fit LVF² (EM with K-means + method-of-moments initialisation).
	model, err := lvf2.Fit(samples, lvf2.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LVF² fit:")
	fmt.Printf("  λ  = %.4f\n", model.Lambda)
	fmt.Printf("  θ₁ = (μ %.6f, σ %.6f, γ %+.3f)\n",
		model.Theta1.Mean, model.Theta1.Sigma, model.Theta1.Skew)
	fmt.Printf("  θ₂ = (μ %.6f, σ %.6f, γ %+.3f)\n",
		model.Theta2.Mean, model.Theta2.Sigma, model.Theta2.Skew)

	// The LVF baseline: a single skew-normal on the same data.
	baseline, err := lvf2.FitLVF(samples)
	if err != nil {
		log.Fatal(err)
	}

	// Score both against a held-out golden set with the paper's metrics.
	m2 := lvf2.EvaluateAgainst(model.Dist(), holdout)
	m1 := lvf2.EvaluateAgainst(baseline.Dist(), holdout)
	fmt.Println("\nAccuracy against the Monte-Carlo golden data:")
	fmt.Printf("  %-6s binErr %.5f   3σ-yieldErr %.5f   CDF RMSE %.5f\n",
		"LVF2", m2.BinErr, m2.YieldErr, m2.CDFRMSE)
	fmt.Printf("  %-6s binErr %.5f   3σ-yieldErr %.5f   CDF RMSE %.5f\n",
		"LVF", m1.BinErr, m1.YieldErr, m1.CDFRMSE)
	fmt.Printf("  error reduction (eq. 12): %.1fx binning, %.1fx yield\n",
		lvf2.ErrorReduction(m1.BinErr, m2.BinErr),
		lvf2.ErrorReduction(m1.YieldErr, m2.YieldErr))

	// Backward compatibility (eq. 10): a plain LVF θ is a valid LVF²
	// model with λ = 0.
	legacy := lvf2.FromLVF(lvf2.Theta{Mean: 0.1, Sigma: 0.005, Skew: 0.3})
	fmt.Printf("\nLVF θ lifted into LVF²: λ=%v, IsLVF=%v\n", legacy.Lambda, legacy.IsLVF())
}
