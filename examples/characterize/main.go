// Library characterisation flow: Monte-Carlo characterise a NAND2 timing
// arc over the full 8×8 slew–load grid, fit LVF² at every point, inspect
// where the second Gaussian component appears (the diagonal accuracy
// pattern of the paper's Fig. 4), and emit the result as a Liberty
// library with the seven LVF² attributes of §3.3.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"lvf2"
)

func main() {
	nand2, ok := lvf2.CellByName("NAND2")
	if !ok {
		log.Fatal("NAND2 not in library")
	}
	arc := nand2.Arcs()[0]
	grid := lvf2.DefaultGrid()

	// Characterise the full grid (reduced sample count for demo speed;
	// the paper uses 50k per point).
	dists := lvf2.CharacterizeArc(lvf2.CharConfig{Samples: 3000, Seed: 5}, arc)

	nom := make([][]float64, len(grid.Slews))
	models := make([][]lvf2.Model, len(grid.Slews))
	reduction := make([][]float64, len(grid.Slews))
	for i := range nom {
		nom[i] = make([]float64, len(grid.Loads))
		models[i] = make([]lvf2.Model, len(grid.Loads))
		reduction[i] = make([]float64, len(grid.Loads))
	}
	for _, d := range dists {
		if d.Kind != lvf2.DelayKind {
			continue
		}
		m, err := lvf2.Fit(d.Samples, lvf2.FitOptions{})
		if err != nil {
			log.Fatalf("fit (%d,%d): %v", d.SlewIdx, d.LoadIdx, err)
		}
		base, err := lvf2.FitLVF(d.Samples)
		if err != nil {
			log.Fatalf("LVF fit (%d,%d): %v", d.SlewIdx, d.LoadIdx, err)
		}
		nom[d.SlewIdx][d.LoadIdx] = d.NomDelay
		models[d.SlewIdx][d.LoadIdx] = m
		m2 := lvf2.EvaluateAgainst(m.Dist(), d.Samples)
		m1 := lvf2.EvaluateAgainst(base.Dist(), d.Samples)
		reduction[d.SlewIdx][d.LoadIdx] = lvf2.ErrorReduction(m1.CDFRMSE, m2.CDFRMSE)
	}

	// The paper's Fig. 4 indicator: LVF²'s CDF-RMSE reduction over LVF at
	// every slew-load point. The multi-Gaussian phenomenon appears along
	// slew-load diagonals — high values cluster on bands where the two
	// variation mechanisms are evenly matched.
	fmt.Printf("LVF2 CDF-RMSE reduction (x) across the %s delay grid (Fig. 4):\n", arc.Label)
	fmt.Print("          ")
	for j := range grid.Loads {
		fmt.Printf("  cap%d ", j+1)
	}
	fmt.Println()
	for i := range grid.Slews {
		fmt.Printf("slew%d %.3f:", i+1, grid.Slews[i])
		for j := range grid.Loads {
			fmt.Printf(" %5.1f ", reduction[i][j])
		}
		fmt.Println()
	}

	// Emit the Liberty library with both classic LVF and LVF² tables.
	tt := lvf2.TimingTablesFromModels("cell_rise", grid.Slews, grid.Loads, nom, models)
	lib := &lvf2.LibertyGroup{Name: "library", Args: []string{"nand2_lvf2_demo"}}
	lib.AddSimple("delay_model", "table_lookup")
	lib.AddSimpleQuoted("time_unit", "1ns")
	cell := lib.AddGroup("cell", "NAND2")
	pinA := cell.AddGroup("pin", "A")
	pinA.AddSimple("direction", "input")
	out := cell.AddGroup("pin", "ZN")
	out.AddSimple("direction", "output")
	timing := out.AddGroup("timing")
	timing.AddSimpleQuoted("related_pin", "A")
	tt.AppendTo(timing, "delay_template_8x8", true)

	text := lib.String()
	fmt.Printf("\nemitted Liberty library: %d lines, %d bytes\n",
		strings.Count(text, "\n"), len(text))

	// Round-trip check: parse it back and reconstruct the model at the
	// most bimodal grid point.
	parsed, err := lvf2.ParseLiberty(text)
	if err != nil {
		log.Fatal(err)
	}
	cellG, _ := parsed.Group("cell")
	var timingG *lvf2.LibertyGroup
	for _, p := range cellG.GroupsNamed("pin") {
		if tg, ok := p.Group("timing"); ok {
			timingG = tg
		}
	}
	tt2, err := lvf2.ExtractTimingTables(timingG, "cell_rise")
	if err != nil {
		log.Fatal(err)
	}
	bi, bj, bl := 0, 0, 0.0
	for i := range grid.Slews {
		for j := range grid.Loads {
			if models[i][j].Lambda > bl {
				bi, bj, bl = i, j, models[i][j].Lambda
			}
		}
	}
	m, err := tt2.ModelAt(bi, bj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip at most-bimodal point (slew%d, cap%d): λ %.4f -> %.4f\n",
		bi+1, bj+1, bl, m.Lambda)

	if len(os.Args) > 1 && os.Args[1] == "-dump" {
		fmt.Println(text)
	}
}
