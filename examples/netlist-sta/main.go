// Netlist SSTA flow: the complete industrial loop the paper's
// compatibility story (§3.3) targets — characterise cells, emit an LVF²
// Liberty library, parse a gate-level Verilog netlist, and run block-based
// statistical timing with both the legacy LVF view and the LVF² view of
// the very same library file.
//
// Run with: go run ./examples/netlist-sta
package main

import (
	"fmt"
	"log"
	"math"

	"lvf2"
)

const verilogSrc = `
// 4-bit ripple-carry adder carry chain (NAND2 decomposition)
module rca4 (cin, a0, b0, a1, b1, a2, b2, a3, b3, cout);
  input cin, a0, b0, a1, b1, a2, b2, a3, b3;
  output cout;
  wire g0, t0, c1, g1, t1, c2, g2, t2, c3, g3, t3;
  NAND2 u_g0 (.A(a0), .B(b0), .ZN(g0));
  NAND2 u_t0 (.A(b0), .B(cin), .ZN(t0));
  NAND2 u_c0 (.A(g0), .B(t0), .ZN(c1));
  NAND2 u_g1 (.A(a1), .B(b1), .ZN(g1));
  NAND2 u_t1 (.A(b1), .B(c1), .ZN(t1));
  NAND2 u_c1 (.A(g1), .B(t1), .ZN(c2));
  NAND2 u_g2 (.A(a2), .B(b2), .ZN(g2));
  NAND2 u_t2 (.A(b2), .B(c2), .ZN(t2));
  NAND2 u_c2 (.A(g2), .B(t2), .ZN(c3));
  NAND2 u_g3 (.A(a3), .B(b3), .ZN(g3));
  NAND2 u_t3 (.A(b3), .B(c3), .ZN(t3));
  NAND2 u_c3 (.A(g3), .B(t3), .ZN(cout));
endmodule
`

func main() {
	// 1. Characterise a NAND2 arc over the grid and fit LVF² per point.
	nand2, ok := lvf2.CellByName("NAND2")
	if !ok {
		log.Fatal("NAND2 not in library")
	}
	arc := nand2.Arcs()[0]
	grid := lvf2.DefaultGrid()
	fmt.Println("characterising NAND2 over the 8x8 grid (2000 MC samples/point)...")
	dists := lvf2.CharacterizeArc(lvf2.CharConfig{Samples: 2000, Seed: 11}, arc)

	mkGrid := func() ([][]float64, [][]lvf2.Model) {
		n := make([][]float64, len(grid.Slews))
		m := make([][]lvf2.Model, len(grid.Slews))
		for i := range n {
			n[i] = make([]float64, len(grid.Loads))
			m[i] = make([]lvf2.Model, len(grid.Loads))
		}
		return n, m
	}
	nomD, modD := mkGrid()
	nomT, modT := mkGrid()
	for _, d := range dists {
		m, err := lvf2.Fit(d.Samples, lvf2.FitOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if d.Kind == lvf2.DelayKind {
			nomD[d.SlewIdx][d.LoadIdx], modD[d.SlewIdx][d.LoadIdx] = d.NomDelay, m
		} else {
			nomT[d.SlewIdx][d.LoadIdx], modT[d.SlewIdx][d.LoadIdx] = d.NomDelay, m
		}
	}

	// 2. Emit the Liberty library (both LVF and LVF² attribute sets in
	// one file) and parse it back — the same bytes serve old and new
	// tools.
	lib := &lvf2.LibertyGroup{Name: "library", Args: []string{"rca_demo"}}
	lib.AddSimple("delay_model", "table_lookup")
	out := lvf2.TimingTablesFromModels("cell_rise", grid.Slews, grid.Loads, nomD, modD)
	tr := lvf2.TimingTablesFromModels("rise_transition", grid.Slews, grid.Loads, nomT, modT)
	cell := lib.AddGroup("cell", "NAND2")
	for _, pin := range []string{"A", "B"} {
		pg := cell.AddGroup("pin", pin)
		pg.AddSimple("direction", "input")
		pg.AddSimple("capacitance", "0.0011")
	}
	zn := cell.AddGroup("pin", "ZN")
	zn.AddSimple("direction", "output")
	for _, pin := range []string{"A", "B"} {
		tg := zn.AddGroup("timing")
		tg.AddSimpleQuoted("related_pin", pin)
		out.AppendTo(tg, "tpl", true)
		tr.AppendTo(tg, "tpl", true)
	}
	parsed, err := lvf2.ParseLiberty(lib.String())
	if err != nil {
		log.Fatal(err)
	}
	sem, err := lvf2.LoadSemanticLibrary(parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emitted + reparsed library: %d bytes\n\n", len(lib.String()))

	// 3. Parse the netlist and run SSTA.
	mod, err := lvf2.ParseNetlist(verilogSrc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lvf2.RunSTA(sem, mod, lvf2.STAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Critical()
	fmt.Printf("module %s: critical output %q, nominal arrival %.4f ns\n\n",
		mod.Name, res.CriticalOutput, a.Nominal)

	for _, kind := range []lvf2.ModelKind{lvf2.KindLVF, lvf2.KindLVF2} {
		v := a.Vars[kind]
		if v == nil {
			continue
		}
		d := v.Dist()
		fmt.Printf("%-5s arrival: mean %.4f ns, σ %.4f ns, 3σ-yield point %.4f ns\n",
			kind, d.Mean(), math.Sqrt(d.Variance()),
			d.Mean()+3*math.Sqrt(d.Variance()))
	}
	fmt.Println("\nThe two rows come from the same .lib file: a legacy tool reads the")
	fmt.Println("classic LVF tables, an LVF²-capable tool reads the mixture tables.")
}
