package lvf2

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lvf2/internal/stats"
)

// The facade tests exercise the public API end to end: characterise →
// fit → bin → emit Liberty → parse back → SSTA.

func bimodalSamples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	truth, _ := stats.NewMixture(
		[]float64{0.7, 0.3},
		[]stats.Dist{
			stats.SNFromMoments(0.10, 0.005, 0.4),
			stats.SNFromMoments(0.13, 0.004, 0.3),
		})
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = truth.Sample(rng)
	}
	return xs
}

func TestFacadeFitAndBin(t *testing.T) {
	xs := bimodalSamples(15000, 1)
	m, err := Fit(xs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.IsLVF() {
		t.Fatal("bimodal data should need two components")
	}
	base, err := FitLVF(xs)
	if err != nil {
		t.Fatal(err)
	}
	mMet := EvaluateAgainst(m.Dist(), xs)
	bMet := EvaluateAgainst(base.Dist(), xs)
	red := ErrorReduction(bMet.BinErr, mMet.BinErr)
	if red <= 1 {
		t.Errorf("LVF2 binning error reduction %v should exceed 1", red)
	}
	// Bin probabilities form a distribution.
	sm := stats.Moments(xs)
	probs := BinProbabilities(m.Dist(), SigmaBoundaries(sm.Mean, sm.Std()))
	var tot float64
	for _, p := range probs {
		tot += p
	}
	if math.Abs(tot-1) > 1e-9 {
		t.Errorf("bin probs sum %v", tot)
	}
	// Yield and revenue plumbing.
	y := Yield3Sigma(m.Dist(), sm.Mean, sm.Std())
	if y < 0.95 || y > 1 {
		t.Errorf("3σ-yield %v", y)
	}
	rev := ExpectedRevenue(probs, []float64{0, 1, 2, 3, 4, 5, 6, 0})
	if rev <= 0 {
		t.Errorf("revenue %v", rev)
	}
}

func TestFacadeFitKinds(t *testing.T) {
	xs := bimodalSamples(6000, 2)
	for _, k := range AllModelKinds() {
		d, err := FitKind(k, xs, FitOptions{})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if d.Mean() <= 0 {
			t.Errorf("%v: mean %v", k, d.Mean())
		}
	}
}

func TestFacadeLibertyRoundTrip(t *testing.T) {
	xs := bimodalSamples(8000, 3)
	m, err := Fit(xs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i1 := []float64{0.01}
	i2 := []float64{0.002}
	tt := TimingTablesFromModels("cell_rise", i1, i2,
		[][]float64{{0.10}}, [][]Model{{m}})
	lib := &LibertyGroup{Name: "library", Args: []string{"t"}}
	cell := lib.AddGroup("cell", "X")
	pin := cell.AddGroup("pin", "ZN")
	timing := pin.AddGroup("timing")
	tt.AppendTo(timing, "tpl", true)

	parsed, err := ParseLiberty(lib.String())
	if err != nil {
		t.Fatal(err)
	}
	cellG, _ := parsed.Group("cell")
	pinG, _ := cellG.Group("pin")
	timingG, _ := pinG.Group("timing")
	tt2, err := ExtractTimingTables(timingG, "cell_rise")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tt2.ModelAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Lambda-m.Lambda) > 1e-6 {
		t.Errorf("λ round trip %v vs %v", m2.Lambda, m.Lambda)
	}
}

func TestFacadeCharacterizeAndSSTA(t *testing.T) {
	corner := TTCorner()
	nand, ok := CellByName("NAND2")
	if !ok {
		t.Fatal("NAND2 missing")
	}
	arcs := nand.Arcs()
	dists := CharacterizeArc(CharConfig{Samples: 800, GridStride: 8}, arcs[0])
	if len(dists) == 0 {
		t.Fatal("no distributions")
	}

	path := FO4Chain(4, 0)
	stages := path.MCStages(corner, 1500, 5)
	res, err := PropagateChain(stages, AllModelKinds(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := res[len(res)-1]
	v := last.Vars[KindLVF2]
	if v == nil {
		t.Fatal("LVF2 var missing")
	}
	gm := last.Golden.Mean()
	if math.Abs(v.Dist().Mean()-gm)/gm > 0.02 {
		t.Errorf("propagated mean %v vs golden %v", v.Dist().Mean(), gm)
	}
}

func TestFacadeBerryEsseen(t *testing.T) {
	xs := bimodalSamples(4000, 6)
	rho := StageNonGaussianity(xs)
	if rho <= 0 {
		t.Fatalf("rho %v", rho)
	}
	b8 := BerryEsseenBound(rho, 8)
	b32 := BerryEsseenBound(rho, 32)
	if !(b32 < b8) {
		t.Error("bound must shrink with depth")
	}
}

func TestFacadeLibraryShape(t *testing.T) {
	libTypes := StandardCells()
	if len(libTypes) != 25 {
		t.Fatalf("library size %d", len(libTypes))
	}
	if fo4, err := FO4Delay(TTCorner()); err != nil || fo4 <= 0 {
		t.Errorf("FO4 delay %v (err %v), must be positive", fo4, err)
	}
	g := DefaultGrid()
	if len(g.Slews) != 8 || len(g.Loads) != 8 {
		t.Error("grid shape")
	}
}

func TestFacadeGraph(t *testing.T) {
	g := NewTimingGraph()
	xs1 := bimodalSamples(2000, 7)
	xs2 := bimodalSamples(2000, 8)
	g.AddEdge("in", "mid", xs1)
	g.AddEdge("mid", "out", xs2)
	arr, err := g.Propagate([]ModelKind{KindLVF}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := arr["out"]; !ok {
		t.Error("missing arrival at sink")
	}
}

func TestFromLVFFacade(t *testing.T) {
	m := FromLVF(Theta{Mean: 0.1, Sigma: 0.01, Skew: 0.2})
	if !m.IsLVF() {
		t.Error("FromLVF must be λ=0")
	}
	if s := m.Dist(); math.Abs(s.Mean()-0.1) > 1e-9 {
		t.Errorf("mean %v", s.Mean())
	}
}

func TestNewTimingVarFacade(t *testing.T) {
	xs := bimodalSamples(3000, 9)
	v, err := NewTimingVar(KindLVF2, xs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := v.Sum(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Dist().Mean()-2*v.Dist().Mean()) > 1e-6 {
		t.Error("self-sum mean should double")
	}
	if _, err := ParseLibertyReader(strings.NewReader("library (x) { }")); err != nil {
		t.Errorf("reader parse: %v", err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	xs := bimodalSamples(8000, 40)
	m, err := FitMix(xs, 3, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() < 2 {
		t.Errorf("K = %d", m.K())
	}
	if len(ExtendedModelKinds()) != 6 {
		t.Error("extended kinds")
	}
	for _, k := range []ModelKind{KindLN, KindLSN} {
		d, err := FitKind(k, xs, FitOptions{})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if d.Mean() <= 0 {
			t.Errorf("%v mean %v", k, d.Mean())
		}
	}
	nand, _ := CellByName("NAND2")
	arc := nand.Arcs()[0]
	plan := PlanAdaptiveCharacterization(AdaptiveCharConfig{
		CharConfig:   CharConfig{Samples: 500, Seed: 2, GridStride: 4},
		PilotSamples: 200,
	}, arc)
	if len(plan) != 4 {
		t.Fatalf("plan size %d", len(plan))
	}
	dists, plan2 := AdaptiveCharacterizeArc(AdaptiveCharConfig{
		CharConfig:   CharConfig{Samples: 500, Seed: 2, GridStride: 4},
		PilotSamples: 200,
	}, arc)
	if len(dists) != 2*len(plan2) {
		t.Error("adaptive distributions shape")
	}
}

func TestFacadeLint(t *testing.T) {
	g, err := ParseLiberty(`library (x) { cell (C) { pin (P) { direction : input; } } }`)
	if err != nil {
		t.Fatal(err)
	}
	issues := LintLibrary(g)
	if len(issues) == 0 {
		t.Fatal("output-less cell should warn")
	}
	if LintHasErrors(issues) {
		t.Error("warnings only expected")
	}
}
