package lvf2

import (
	"lvf2/internal/fit"
	"lvf2/internal/ssta"
	"lvf2/internal/stats"
)

// SSTA support: block-based statistical timing propagation with the
// per-model sum/max algebra of internal/ssta.

// TimingVar is a statistical timing variable closed under Sum and Max.
type TimingVar = ssta.Var

// PathStageSamples is one stage of a timing path for SSTA propagation.
type PathStageSamples = ssta.Stage

// StageResult reports the accumulated state after each stage.
type StageResult = ssta.StageResult

// TimingGraph is a timing DAG with statistical max at reconvergence.
type TimingGraph = ssta.Graph

// NewTimingGraph returns an empty timing graph.
func NewTimingGraph() *TimingGraph { return ssta.NewGraph() }

// NewTimingVar fits a model family to stage samples and wraps it as a
// propagatable timing variable.
func NewTimingVar(kind ModelKind, samples []float64, o FitOptions) (TimingVar, error) {
	return ssta.VarFromSamples(kind, samples, o)
}

// PropagateChain runs block-based SSTA along a chain of stages for the
// given model families, returning per-stage golden and model
// distributions.
func PropagateChain(stages []PathStageSamples, kinds []ModelKind, o FitOptions) ([]StageResult, error) {
	return ssta.PropagateChain(stages, kinds, o)
}

// AllModelKinds lists the four models in the paper's comparison order.
func AllModelKinds() []ModelKind {
	out := make([]ModelKind, len(fit.AllModels))
	copy(out, fit.AllModels)
	return out
}

// BerryEsseenBound evaluates Theorem 1's bound C·ρ/√n on the distance of
// an n-stage accumulated delay from Gaussian.
func BerryEsseenBound(rho float64, n int) float64 {
	return ssta.BerryEsseenBound(rho, n)
}

// StageNonGaussianity estimates ρ = E|X−μ|³/σ³ of stage samples, the
// quantity that drives the Berry–Esseen bound.
func StageNonGaussianity(samples []float64) float64 {
	return ssta.AbsThirdStandardizedMoment(samples)
}

// EmpiricalOf wraps golden samples for metric evaluation.
func EmpiricalOf(samples []float64) *stats.Empirical {
	return stats.NewEmpirical(samples)
}
