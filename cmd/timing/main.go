// Command timing runs block-based statistical static timing analysis on a
// gate-level Verilog netlist against a Liberty library with LVF and/or
// LVF² attributes — the end-user SSTA flow of the paper.
//
// Usage:
//
//	timing -lib synth.lib -netlist design.v
//	timing -lib synth.lib -builtin rca16         # built-in benchmark netlists
//	timing -lib synth.lib -builtin chain -n 12 -cell INV
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
	"lvf2/internal/sta"
	"lvf2/internal/stats"
)

func main() {
	var (
		libPath  = flag.String("lib", "", "Liberty library file (required)")
		nlPath   = flag.String("netlist", "", "structural Verilog netlist")
		builtin  = flag.String("builtin", "", "built-in netlist: chain | rca16 | buftree")
		n        = flag.Int("n", 8, "stage count for -builtin chain / tree depth")
		cellName = flag.String("cell", "INV", "cell type for -builtin chain")
		slew     = flag.Float64("slew", 0.01, "primary input slew, ns")
		allNets  = flag.Bool("all", false, "print every net, not just primary outputs")
		showPath = flag.Bool("path", false, "print the nominal critical path")
	)
	flag.Parse()

	if *libPath == "" {
		fatal(fmt.Errorf("-lib is required"))
	}
	group, err := liberty.ParseFile(*libPath)
	if err != nil {
		fatal(err)
	}
	lib, err := liberty.LoadLibrary(group)
	if err != nil {
		fatal(err)
	}

	var mod *netlist.Module
	switch {
	case *nlPath != "":
		b, err := os.ReadFile(*nlPath)
		if err != nil {
			fatal(err)
		}
		if mod, err = netlist.Parse(string(b)); err != nil {
			fatal(err)
		}
	case *builtin == "chain":
		mod = netlist.Chain("chain", *cellName, *n)
	case *builtin == "rca16":
		mod = netlist.RippleCarryAdder(16)
	case *builtin == "buftree":
		mod = netlist.BufferTree(*n)
	default:
		fatal(fmt.Errorf("provide -netlist or -builtin {chain|rca16|buftree}"))
	}

	res, err := sta.Run(lib, mod, sta.Options{InputSlew: *slew})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("module %s: %d instances, critical output %q\n\n",
		mod.Name, len(mod.Instances), res.CriticalOutput)
	if *showPath {
		fmt.Println("critical path:")
		for _, step := range res.CriticalPath(res.CriticalOutput) {
			inst := step.Instance
			if inst == "" {
				inst = "(primary input)"
			}
			fmt.Printf("  %-12s %-16s arrival %.5f ns\n", step.Net, inst, step.Arrival)
		}
		fmt.Println()
	}

	fmt.Printf("%-12s %10s %10s | %22s | %22s\n", "net", "nominal", "slew",
		"LVF  (mean σ q99.87)", "LVF2 (mean σ q99.87)")
	nets := mod.Outputs()
	if *allNets {
		nets = mod.Nets()
	}
	sort.Strings(nets)
	for _, net := range nets {
		a, ok := res.Arrivals[net]
		if !ok {
			continue
		}
		row := fmt.Sprintf("%-12s %10.5f %10.5f |", net, a.Nominal, a.Slew)
		for _, fam := range []fit.Model{fit.ModelLVF, fit.ModelLVF2} {
			v := a.Vars[fam]
			if v == nil {
				row += fmt.Sprintf(" %22s |", "-")
				continue
			}
			d := v.Dist()
			q := stats.Quantile(d, 0.9987) // μ+3σ-equivalent yield point
			row += fmt.Sprintf(" %7.5f %7.5f %7.5f |", d.Mean(),
				math.Sqrt(d.Variance()), q)
		}
		fmt.Println(row)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "timing: %v\n", err)
	os.Exit(1)
}
