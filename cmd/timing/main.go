// Command timing runs block-based statistical static timing analysis on a
// gate-level Verilog netlist against a Liberty library with LVF and/or
// LVF² attributes — the end-user SSTA flow of the paper.
//
// Usage:
//
//	timing -lib synth.lib -netlist design.v
//	timing -lib synth.lib -builtin rca16         # built-in benchmark netlists
//	timing -lib synth.lib -builtin chain -n 12 -cell INV -timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/netlist"
	"lvf2/internal/sta"
	"lvf2/internal/stats"
)

func main() {
	var (
		libPath  = flag.String("lib", "", "Liberty library file (required)")
		nlPath   = flag.String("netlist", "", "structural Verilog netlist")
		builtin  = flag.String("builtin", "", "built-in netlist: chain | rca16 | buftree")
		n        = flag.Int("n", 8, "stage count for -builtin chain / tree depth")
		cellName = flag.String("cell", "INV", "cell type for -builtin chain")
		slew     = flag.Float64("slew", 0.01, "primary input slew, ns")
		allNets  = flag.Bool("all", false, "print every net, not just primary outputs")
		showPath = flag.Bool("path", false, "print the nominal critical path")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget, e.g. 30s (0 = unlimited)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: timing -lib <file.lib> (-netlist <design.v> | -builtin {chain|rca16|buftree}) [flags]\n\n"+
				"Run block-based SSTA over a gate-level netlist against an LVF/LVF² library.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "timing: unexpected arguments: %v\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *libPath == "" {
		fmt.Fprintln(os.Stderr, "timing: -lib is required")
		flag.Usage()
		os.Exit(2)
	}

	var lib *liberty.Library
	var mod *netlist.Module
	var res *sta.Result
	err := withTimeout(*timeout, func() error {
		group, err := liberty.ParseFile(*libPath)
		if err != nil {
			return err
		}
		if lib, err = liberty.LoadLibrary(group); err != nil {
			return err
		}

		switch {
		case *nlPath != "":
			b, err := os.ReadFile(*nlPath)
			if err != nil {
				return err
			}
			if mod, err = netlist.Parse(string(b)); err != nil {
				return err
			}
		case *builtin == "chain":
			mod = netlist.Chain("chain", *cellName, *n)
		case *builtin == "rca16":
			mod = netlist.RippleCarryAdder(16)
		case *builtin == "buftree":
			mod = netlist.BufferTree(*n)
		default:
			return fmt.Errorf("provide -netlist or -builtin {chain|rca16|buftree}")
		}

		res, err = sta.Run(lib, mod, sta.Options{InputSlew: *slew})
		return err
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("module %s: %d instances, critical output %q\n\n",
		mod.Name, len(mod.Instances), res.CriticalOutput)
	if *showPath {
		fmt.Println("critical path:")
		for _, step := range res.CriticalPath(res.CriticalOutput) {
			inst := step.Instance
			if inst == "" {
				inst = "(primary input)"
			}
			fmt.Printf("  %-12s %-16s arrival %.5f ns\n", step.Net, inst, step.Arrival)
		}
		fmt.Println()
	}

	fmt.Printf("%-12s %10s %10s | %22s | %22s\n", "net", "nominal", "slew",
		"LVF  (mean σ q99.87)", "LVF2 (mean σ q99.87)")
	nets := mod.Outputs()
	if *allNets {
		nets = mod.Nets()
	}
	sort.Strings(nets)
	for _, net := range nets {
		a, ok := res.Arrivals[net]
		if !ok {
			continue
		}
		row := fmt.Sprintf("%-12s %10.5f %10.5f |", net, a.Nominal, a.Slew)
		for _, fam := range []fit.Model{fit.ModelLVF, fit.ModelLVF2} {
			v := a.Vars[fam]
			if v == nil {
				row += fmt.Sprintf(" %22s |", "-")
				continue
			}
			d := v.Dist()
			q := stats.Quantile(d, 0.9987) // μ+3σ-equivalent yield point
			row += fmt.Sprintf(" %7.5f %7.5f %7.5f |", d.Mean(),
				math.Sqrt(d.Variance()), q)
		}
		fmt.Println(row)
	}
}

// withTimeout runs f with a wall-clock budget, mirroring cmd/lvf2fit: on
// expiry the worker goroutine is abandoned (it finishes in the background;
// the process exits immediately after).
func withTimeout(budget time.Duration, f func() error) error {
	if budget <= 0 {
		return f()
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		return fmt.Errorf("%w after %v (raise -timeout)", context.DeadlineExceeded, budget)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "timing: %v\n", err)
	os.Exit(1)
}
