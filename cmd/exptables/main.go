// Command exptables regenerates the tables and figures of the LVF² paper
// (DAC 2024) on the synthetic substrate and prints them as text/CSV.
//
// Usage:
//
//	exptables -exp table1            # five-scenario assessment (Table 1)
//	exptables -exp table2 -arcs 2    # standard-cell library sweep (Table 2)
//	exptables -exp fig3  > fig3.csv  # fitted PDF curves (Fig. 3)
//	exptables -exp fig4              # slew-load accuracy pattern (Fig. 4)
//	exptables -exp fig5              # path SSTA study (Fig. 5, both paths)
//	exptables -exp all -samples 50000 -arcs 0 -stride 1   # paper scale
package main

import (
	"flag"
	"fmt"
	"os"

	"lvf2/internal/circuits"
	"lvf2/internal/experiments"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
)

// writeSVG stores one figure under dir.
func writeSVG(dir, name, svg string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name+".svg", []byte(svg), 0o644)
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|fig3|fig4|fig5|clt|vsweep|all")
		samples = flag.Int("samples", 0, "MC samples per distribution (0 = reduced default; paper uses 50000)")
		seed    = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		arcs    = flag.Int("arcs", 2, "arcs per cell type for table2 (0 = all arcs, paper scale)")
		stride  = flag.Int("stride", 4, "slew-load grid stride for table2 (1 = full 8x8 grid)")
		polish  = flag.Bool("polish", false, "enable the Nelder-Mead MLE polish after EM")
		ext     = flag.Bool("extended", false, "add the LN/LSN prior-work models to table1")
		repeats = flag.Int("repeats", 1, "seed-average count for fig5 reductions")
		svgDir  = flag.String("svg", "", "also write figures as SVG files into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{Samples: *samples, Seed: *seed, Repeats: *repeats}
	cfg.FitOpts.Polish = *polish
	if *ext {
		cfg.Models = fit.ExtendedModels
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "exptables: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		fmt.Println()
		return nil
	})
	run("fig3", func() error {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig3CSV(rows, 200))
		if *svgDir != "" {
			for slug, svg := range experiments.Fig3SVGs(rows, 240) {
				if err := writeSVG(*svgDir, "fig3_"+slug, svg); err != nil {
					return err
				}
			}
		}
		return nil
	})
	run("table2", func() error {
		t2 := experiments.Table2Config{Config: cfg, ArcsPerType: *arcs, GridStride: *stride}
		if *arcs == 0 {
			t2.ArcsPerType = -1 // all arcs
		}
		rows, err := experiments.Table2(t2)
		if err != nil {
			return err
		}
		experiments.SortRowsLikePaper(rows)
		fmt.Print(experiments.RenderTable2(rows))
		fmt.Println()
		return nil
	})
	run("fig4", func() error {
		res, err := experiments.Fig4(experiments.Fig4Config{Config: cfg})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig4(res))
		fmt.Printf("diagonal pattern score: delay %.2f, transition %.2f (positive = diagonal regularity present)\n\n",
			experiments.DiagonalScore(res.DelayRed), experiments.DiagonalScore(res.TransRed))
		if *svgDir != "" {
			d, tr := experiments.Fig4SVGs(res)
			if err := writeSVG(*svgDir, "fig4_delay", d); err != nil {
				return err
			}
			if err := writeSVG(*svgDir, "fig4_transition", tr); err != nil {
				return err
			}
		}
		return nil
	})
	run("vsweep", func() error {
		res, err := experiments.VSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderVSweep(res))
		fmt.Println()
		return nil
	})
	run("clt", func() error {
		res, err := experiments.CLT(cfg, 16, spice.TTCorner())
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCLT(res))
		fmt.Println()
		return nil
	})
	run("fig5", func() error {
		corner := spice.TTCorner()
		for _, path := range []circuits.Path{
			circuits.CarryAdder16(corner),
			circuits.HTree6(corner),
		} {
			res, err := experiments.Fig5(cfg, path, corner)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig5(res))
			fmt.Println()
			if *svgDir != "" {
				if err := writeSVG(*svgDir, "fig5_"+path.Name, experiments.Fig5SVG(res)); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
