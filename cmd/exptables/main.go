// Command exptables regenerates the tables and figures of the LVF² paper
// (DAC 2024) on the synthetic substrate and prints them as text/CSV.
//
// Usage:
//
//	exptables -exp table1            # five-scenario assessment (Table 1)
//	exptables -exp table2 -arcs 2    # standard-cell library sweep (Table 2)
//	exptables -exp fig3  > fig3.csv  # fitted PDF curves (Fig. 3)
//	exptables -exp fig4              # slew-load accuracy pattern (Fig. 4)
//	exptables -exp fig5              # path SSTA study (Fig. 5, both paths)
//	exptables -exp yield             # rare-event yield vs sigma (estimator ladder)
//	exptables -exp all -samples 50000 -arcs 0 -stride 1   # paper scale
//
// With -checkpoint the table1/fig3/table2 drivers journal every work
// unit; an interrupted run (SIGINT/SIGTERM, OOM kill) resumes with
// -resume instead of restarting. Table 1 and Table 2 keep separate
// journals in subdirectories of the checkpoint dir.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"lvf2/internal/checkpoint"
	"lvf2/internal/circuits"
	"lvf2/internal/experiments"
	"lvf2/internal/fit"
	"lvf2/internal/spice"
	"lvf2/internal/yield"
)

// openJournal opens (or cold-starts) one driver's checkpoint journal.
// A fresh (non -resume) run clears stale segments; a -resume run
// replays them, degrading to a cold start — with the typed corruption
// error on stderr — when the journal is unreadable or belongs to a
// different configuration.
func openJournal(dir string, fp checkpoint.Fingerprint, resume bool) (*checkpoint.Journal, error) {
	fsys := checkpoint.OSFS{}
	if !resume {
		if err := checkpoint.Reset(fsys, dir); err != nil {
			return nil, fmt.Errorf("clear checkpoint dir: %w", err)
		}
	}
	j, err := checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	if errors.Is(err, checkpoint.ErrCorruptJournal) {
		fmt.Fprintf(os.Stderr, "exptables: %v — starting cold\n", err)
		if rerr := checkpoint.Reset(fsys, dir); rerr != nil {
			return nil, fmt.Errorf("clear corrupt journal: %w", rerr)
		}
		j, err = checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	}
	if err != nil {
		return nil, err
	}
	if resume {
		st := j.Stats()
		fmt.Fprintf(os.Stderr, "exptables: journal %s replayed: %d resolved units, %d segments\n", dir, st.Resolved, st.Segments)
	}
	return j, nil
}

// writeSVG stores one figure under dir.
func writeSVG(dir, name, svg string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name+".svg", []byte(svg), 0o644)
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|fig3|fig4|fig5|clt|vsweep|yield|all")
		samples = flag.Int("samples", 0, "MC samples per distribution (0 = reduced default; paper uses 50000)")
		seed    = flag.Uint64("seed", 0, "base RNG seed (0 = default)")
		arcs    = flag.Int("arcs", 2, "arcs per cell type for table2 (0 = all arcs, paper scale)")
		stride  = flag.Int("stride", 4, "slew-load grid stride for table2 (1 = full 8x8 grid)")
		polish  = flag.Bool("polish", false, "enable the Nelder-Mead MLE polish after EM")
		ext     = flag.Bool("extended", false, "add the LN/LSN prior-work models to table1")
		repeats = flag.Int("repeats", 1, "seed-average count for fig5 reductions")
		svgDir  = flag.String("svg", "", "also write figures as SVG files into this directory")
		ckptDir = flag.String("checkpoint", "", "journal directory for resumable table1/table2 runs (empty = no journal)")
		resume  = flag.Bool("resume", false, "resume from the -checkpoint journal instead of starting fresh")
	)
	flag.Parse()
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "exptables: -resume requires -checkpoint")
		os.Exit(1)
	}

	cfg := experiments.Config{Samples: *samples, Seed: *seed, Repeats: *repeats}
	cfg.FitOpts.Polish = *polish
	if *ext {
		cfg.Models = fit.ExtendedModels
	}

	ctx, trap := checkpoint.TrapSignals(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer trap.Stop()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		err := f()
		if sig := trap.Signal(); sig != nil {
			fmt.Fprintf(os.Stderr, "exptables: %s interrupted by %v; journal flushed\n", name, sig)
			if *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "exptables: resume with: exptables -exp %s -checkpoint %s -resume (plus your original flags)\n", name, *ckptDir)
			}
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "exptables: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	// withJournal opens the sub-journal for one driver (table1 and table2
	// have different unit shapes, so they get separate segments and
	// fingerprints) and closes — sealing — it after the driver returns.
	withJournal := func(sub string, fp checkpoint.Fingerprint, f func(j *checkpoint.Journal) error) error {
		if *ckptDir == "" {
			return f(nil)
		}
		j, err := openJournal(filepath.Join(*ckptDir, sub), fp, *resume)
		if err != nil {
			return err
		}
		defer j.Close()
		return f(j)
	}

	table1 := func(f func(rows []experiments.ScenarioResult) error) error {
		return withJournal("table1", cfg.Table1Fingerprint(), func(j *checkpoint.Journal) error {
			c := cfg
			c.Checkpoint = j
			rows, err := experiments.Table1Ctx(ctx, c)
			if err != nil {
				return err
			}
			return f(rows)
		})
	}
	run("table1", func() error {
		return table1(func(rows []experiments.ScenarioResult) error {
			fmt.Print(experiments.RenderTable1(rows))
			fmt.Println()
			return nil
		})
	})
	run("fig3", func() error {
		return table1(func(rows []experiments.ScenarioResult) error {
			fmt.Print(experiments.Fig3CSV(rows, 200))
			for _, r := range rows {
				if r.Restored {
					fmt.Fprintf(os.Stderr, "exptables: fig3: scenario %q restored from the journal; no curves to plot (rerun without -checkpoint for figures)\n", r.Scenario.Name)
				}
			}
			if *svgDir != "" {
				for slug, svg := range experiments.Fig3SVGs(rows, 240) {
					if err := writeSVG(*svgDir, "fig3_"+slug, svg); err != nil {
						return err
					}
				}
			}
			return nil
		})
	})
	run("table2", func() error {
		t2 := experiments.Table2Config{Config: cfg, ArcsPerType: *arcs, GridStride: *stride}
		if *arcs == 0 {
			t2.ArcsPerType = -1 // all arcs
		}
		return withJournal("table2", t2.Table2Fingerprint(), func(j *checkpoint.Journal) error {
			t2.Checkpoint = j
			rows, err := experiments.Table2Ctx(ctx, t2)
			if err != nil {
				return err
			}
			experiments.SortRowsLikePaper(rows)
			fmt.Print(experiments.RenderTable2(rows))
			fmt.Println()
			return nil
		})
	})
	run("fig4", func() error {
		res, err := experiments.Fig4(experiments.Fig4Config{Config: cfg})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig4(res))
		fmt.Printf("diagonal pattern score: delay %.2f, transition %.2f (positive = diagonal regularity present)\n\n",
			experiments.DiagonalScore(res.DelayRed), experiments.DiagonalScore(res.TransRed))
		if *svgDir != "" {
			d, tr := experiments.Fig4SVGs(res)
			if err := writeSVG(*svgDir, "fig4_delay", d); err != nil {
				return err
			}
			if err := writeSVG(*svgDir, "fig4_transition", tr); err != nil {
				return err
			}
		}
		return nil
	})
	run("yield", func() error {
		res, err := experiments.YieldVsSigma(ctx, cfg, nil, yield.Contract{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderYieldTable(res))
		fmt.Println()
		return nil
	})
	run("vsweep", func() error {
		res, err := experiments.VSweep(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderVSweep(res))
		fmt.Println()
		return nil
	})
	run("clt", func() error {
		res, err := experiments.CLT(cfg, 16, spice.TTCorner())
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCLT(res))
		fmt.Println()
		return nil
	})
	run("fig5", func() error {
		corner := spice.TTCorner()
		for _, path := range []circuits.Path{
			circuits.CarryAdder16(corner),
			circuits.HTree6(corner),
		} {
			res, err := experiments.Fig5(cfg, path, corner)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig5(res))
			fmt.Println()
			if *svgDir != "" {
				if err := writeSVG(*svgDir, "fig5_"+path.Name, experiments.Fig5SVG(res)); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
