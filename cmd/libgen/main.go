// Command libgen characterises the synthetic standard-cell library by
// Monte-Carlo simulation and emits a Liberty (.lib) file with classic LVF
// and, optionally, the paper's LVF² attributes.
//
// Fits run through the graceful-degradation ladder (LVF² → Norm² → LVF →
// Gaussian): a grid point whose requested fit fails validation is retried
// and then degraded instead of aborting the run. Every fallback is
// reported on stderr and recorded in the emitted library as an
// ocv_fallback_note_* attribute.
//
// With -checkpoint the run is resumable: every (arc, slew, load, kind)
// fit is journaled as it completes, SIGINT/SIGTERM flushes the journal
// before exiting, and -resume restores completed units instead of
// recomputing them — the resumed library is bit-identical to an
// uninterrupted run.
//
// Usage:
//
//	libgen -cells INV,NAND2 -arcs 1 -samples 5000 -format lvf2 -o out.lib
//	libgen -cells all -arcs 2 -stride 4 -format lvf -timeout 5m -o classic.lib
//	libgen -cells all -checkpoint ckpt/ -o full.lib      # journaled run
//	libgen -cells all -checkpoint ckpt/ -resume -o full.lib
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/libbuild"
	"lvf2/internal/liberty"
)

func main() {
	var (
		cellList = flag.String("cells", "INV,NAND2", `comma-separated cell types, or "all"`)
		arcs     = flag.Int("arcs", 1, "arcs to characterise per cell type")
		samples  = flag.Int("samples", 4000, "MC samples per distribution")
		stride   = flag.Int("stride", 1, "grid stride (1 = full 8x8)")
		format   = flag.String("format", "lvf2", "output format: lvf | lvf2")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget, e.g. 5m (0 = unlimited)")
		ckptDir  = flag.String("checkpoint", "", "journal directory for resumable runs (empty = no journal)")
		resume   = flag.Bool("resume", false, "resume from the -checkpoint journal instead of starting fresh")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *format != "lvf" && *format != "lvf2" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *resume && *ckptDir == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, trap := checkpoint.TrapSignals(ctx, os.Interrupt, syscall.SIGTERM)
	defer trap.Stop()

	var types []cells.CellType
	if *cellList == "all" {
		types = cells.Library()
	} else {
		for _, name := range strings.Split(*cellList, ",") {
			ct, ok := cells.CellByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown cell %q", name))
			}
			types = append(types, ct)
		}
	}

	cfg := libbuild.Config{
		Types:   types,
		ArcsPer: *arcs,
		Char:    cells.CharConfig{Samples: *samples, Seed: *seed, GridStride: *stride},
		LVF2:    *format == "lvf2",
		Log:     os.Stderr,
	}
	if *ckptDir != "" {
		cfg.Journal = openJournal(*ckptDir, cfg.Fingerprint(), *resume)
		defer cfg.Journal.Close()
	}

	lib, stats, err := libbuild.Build(ctx, cfg)
	if sig := trap.Signal(); sig != nil {
		cfg.Journal.Close()
		sealed := 0
		for _, rec := range cfg.Journal.Records() {
			if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
				sealed++
			}
		}
		fmt.Fprintf(os.Stderr, "libgen: interrupted by %v; journal flushed (%d units sealed)\n", sig, sealed)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "libgen: resume with: libgen -checkpoint %s -resume (plus your original flags)\n", *ckptDir)
		}
		os.Exit(130)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		hint := "raise -timeout or -stride"
		if *ckptDir != "" {
			hint = "rerun with -resume to continue where this run stopped"
		}
		fatal(fmt.Errorf("timed out after %v (%s)", *timeout, hint))
	}
	if err != nil {
		fatal(err)
	}
	if stats.Restored > 0 {
		fmt.Fprintf(os.Stderr, "libgen: resumed: %d/%d units restored from the journal\n", stats.Restored, stats.Units)
	}
	if stats.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "libgen: %d poison unit(s) quarantined (see ocv_fallback_note_* attributes)\n", stats.Quarantined)
	}
	if stats.Fallbacks > 0 {
		fmt.Fprintf(os.Stderr, "libgen: %d fit(s) fell back to a degraded model (see ocv_fallback_note_* attributes)\n", stats.Fallbacks)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := liberty.WriteLibrary(w, lib); err != nil {
		fatal(err)
	}
}

// openJournal opens (or cold-starts) the checkpoint journal. A fresh
// (non -resume) run clears any stale segments; a -resume run replays
// them, degrading to a cold start — with the typed corruption error on
// stderr — when the journal is unreadable or belongs to a different
// configuration.
func openJournal(dir string, fp checkpoint.Fingerprint, resume bool) *checkpoint.Journal {
	fsys := checkpoint.OSFS{}
	if !resume {
		if err := checkpoint.Reset(fsys, dir); err != nil {
			fatal(fmt.Errorf("clear checkpoint dir: %w", err))
		}
	}
	j, err := checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	if errors.Is(err, checkpoint.ErrCorruptJournal) {
		fmt.Fprintf(os.Stderr, "libgen: %v — starting cold\n", err)
		if rerr := checkpoint.Reset(fsys, dir); rerr != nil {
			fatal(fmt.Errorf("clear corrupt journal: %w", rerr))
		}
		j, err = checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	}
	if err != nil {
		fatal(err)
	}
	if resume {
		st := j.Stats()
		fmt.Fprintf(os.Stderr, "libgen: journal replayed: %d resolved units, %d segments", st.Resolved, st.Segments)
		if st.TornRecords > 0 {
			fmt.Fprintf(os.Stderr, " (%d torn tail record(s) dropped)", st.TornRecords)
		}
		fmt.Fprintln(os.Stderr)
	}
	return j
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "libgen: %v\n", err)
	os.Exit(1)
}
