// Command libgen characterises the synthetic standard-cell library by
// Monte-Carlo simulation and emits a Liberty (.lib) file with classic LVF
// and, optionally, the paper's LVF² attributes.
//
// Fits run through the graceful-degradation ladder (LVF² → Norm² → LVF →
// Gaussian): a grid point whose requested fit fails validation is retried
// and then degraded instead of aborting the run. Every fallback is
// reported on stderr and recorded in the emitted library as an
// ocv_fallback_note_* attribute.
//
// With -checkpoint the run is resumable: every (arc, slew, load, kind)
// fit is journaled as it completes, SIGINT/SIGTERM flushes the journal
// before exiting, and -resume restores completed units instead of
// recomputing them — the resumed library is bit-identical to an
// uninterrupted run.
//
// With -serve the build is distributed: libgen becomes a lease-based
// coordinator over the checkpoint journal, handing work units to
// `libgen -worker` processes and assembling the library once every unit
// is journaled terminal. Workers need no configuration flags — they
// fetch the build spec at join time and refuse to run against a
// mismatched coordinator. See DESIGN.md §13.
//
// Usage:
//
//	libgen -cells INV,NAND2 -arcs 1 -samples 5000 -format lvf2 -o out.lib
//	libgen -cells all -arcs 2 -stride 4 -format lvf -timeout 5m -o classic.lib
//	libgen -cells all -checkpoint ckpt/ -o full.lib      # journaled run
//	libgen -cells all -checkpoint ckpt/ -resume -o full.lib
//	libgen -cells all -checkpoint ckpt/ -serve :9190 -o full.lib   # coordinator
//	libgen -worker -join http://host:9190                          # x N workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"

	"lvf2/internal/cells"
	"lvf2/internal/checkpoint"
	"lvf2/internal/dist"
	"lvf2/internal/libbuild"
	"lvf2/internal/liberty"
)

func main() {
	var (
		cellList = flag.String("cells", "INV,NAND2", `comma-separated cell types, or "all"`)
		arcs     = flag.Int("arcs", 1, "arcs to characterise per cell type")
		samples  = flag.Int("samples", 4000, "MC samples per distribution")
		stride   = flag.Int("stride", 1, "grid stride (1 = full 8x8)")
		format   = flag.String("format", "lvf2", "output format: lvf | lvf2")
		cold     = flag.Bool("cold", false, "disable warm-start seeding (every fit multi-starts from scratch)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget, e.g. 5m (0 = unlimited)")
		ckptDir  = flag.String("checkpoint", "", "journal directory for resumable runs (empty = no journal)")
		resume   = flag.Bool("resume", false, "resume from the -checkpoint journal instead of starting fresh")
		serve    = flag.String("serve", "", "run as distribution coordinator on this address (requires -checkpoint)")
		worker   = flag.Bool("worker", false, "run as a characterisation worker (requires -join; build flags are ignored)")
		join     = flag.String("join", "", "coordinator URL a -worker should join, e.g. http://host:9190")
		workerID = flag.String("id", "", "worker identity (default hostname-pid)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *format != "lvf" && *format != "lvf2" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *resume && *ckptDir == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}
	if *serve != "" && *ckptDir == "" {
		fatal(errors.New("-serve requires -checkpoint: the journal is the coordinator's only durable state"))
	}
	if *serve != "" && *worker {
		fatal(errors.New("-serve and -worker are mutually exclusive"))
	}
	if *worker && *join == "" {
		fatal(errors.New("-worker requires -join"))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, trap := checkpoint.TrapSignals(ctx, os.Interrupt, syscall.SIGTERM)
	defer trap.Stop()

	if *worker {
		runWorker(ctx, trap, *join, *workerID)
		return
	}

	var types []cells.CellType
	if *cellList == "all" {
		types = cells.Library()
	} else {
		for _, name := range strings.Split(*cellList, ",") {
			ct, ok := cells.CellByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown cell %q", name))
			}
			types = append(types, ct)
		}
	}

	cfg := libbuild.Config{
		Types:     types,
		ArcsPer:   *arcs,
		Char:      cells.CharConfig{Samples: *samples, Seed: *seed, GridStride: *stride},
		LVF2:      *format == "lvf2",
		ColdStart: *cold,
		Log:       os.Stderr,
	}
	if *ckptDir != "" {
		cfg.Journal = openJournal(*ckptDir, cfg.Fingerprint(), *resume)
		defer cfg.Journal.Close()
	}

	if *serve != "" {
		// Coordinator mode: distribute the units, then fall through to
		// libbuild.Build below — with every unit journaled terminal it is
		// a pure restore-and-assemble pass, so the emitted library is the
		// same bytes a single-process run would produce.
		if err := serveCoordinator(ctx, cfg, *serve); err != nil {
			if sig := trap.Signal(); sig != nil {
				interruptedExit(cfg.Journal, *ckptDir, sig)
			}
			fatal(err)
		}
	}

	lib, stats, err := libbuild.Build(ctx, cfg)
	if sig := trap.Signal(); sig != nil {
		interruptedExit(cfg.Journal, *ckptDir, sig)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		hint := "raise -timeout or -stride"
		if *ckptDir != "" {
			hint = "rerun with -resume to continue where this run stopped"
		}
		fatal(fmt.Errorf("timed out after %v (%s)", *timeout, hint))
	}
	if err != nil {
		fatal(err)
	}
	if stats.Restored > 0 {
		fmt.Fprintf(os.Stderr, "libgen: resumed: %d/%d units restored from the journal\n", stats.Restored, stats.Units)
	}
	if stats.WarmHits+stats.WarmRejected > 0 {
		fmt.Fprintf(os.Stderr, "libgen: warm-start: %d seeded fit(s) accepted, %d rejected to cold\n", stats.WarmHits, stats.WarmRejected)
	}
	if stats.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "libgen: %d poison unit(s) quarantined (see ocv_fallback_note_* attributes)\n", stats.Quarantined)
	}
	if stats.Fallbacks > 0 {
		fmt.Fprintf(os.Stderr, "libgen: %d fit(s) fell back to a degraded model (see ocv_fallback_note_* attributes)\n", stats.Fallbacks)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := liberty.WriteLibrary(w, lib); err != nil {
		fatal(err)
	}
}

// interruptedExit is the SIGINT/SIGTERM path shared by the local,
// coordinator and assembly phases: flush and seal the journal, report
// how much progress survived, print the resume hint, exit 130.
func interruptedExit(j *checkpoint.Journal, ckptDir string, sig os.Signal) {
	j.Close()
	sealed := 0
	for _, rec := range j.Records() {
		if rec.Status == checkpoint.StatusDone || rec.Status == checkpoint.StatusQuarantined {
			sealed++
		}
	}
	fmt.Fprintf(os.Stderr, "libgen: interrupted by %v; journal flushed (%d units sealed)\n", sig, sealed)
	if ckptDir != "" {
		fmt.Fprintf(os.Stderr, "libgen: resume with: libgen -checkpoint %s -resume (plus your original flags)\n", ckptDir)
	}
	os.Exit(130)
}

// serveCoordinator runs the lease-based coordinator until every unit is
// journaled terminal or ctx is cancelled (signal or -timeout). Progress
// is durable either way: a crashed or interrupted coordinator restarts
// from the journal alone.
func serveCoordinator(ctx context.Context, cfg libbuild.Config, addr string) error {
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Build: cfg, Log: os.Stderr})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "libgen: coordinator on %s; join workers with: libgen -worker -join http://%s\n",
		ln.Addr(), ln.Addr())

	waitErr := coord.Wait(ctx)
	srv.Close()
	if waitErr != nil {
		return waitErr
	}
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	default:
	}
	fmt.Fprintf(os.Stderr, "libgen: distributed build drained; assembling library from the journal\n")
	return nil
}

// runWorker joins a coordinator and characterises leased units until the
// build drains or the worker is told to stop. A signalled worker exits
// 130 after abandoning its lease; the coordinator re-leases the units
// when the lease TTL lapses, so no progress is lost.
func runWorker(ctx context.Context, trap *checkpoint.SignalTrap, joinURL, id string) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	err := dist.RunWorker(ctx, dist.WorkerConfig{ID: id, URL: joinURL, Log: os.Stderr})
	if sig := trap.Signal(); sig != nil {
		fmt.Fprintf(os.Stderr, "libgen: worker %s interrupted by %v; lease abandoned (the coordinator re-leases it on expiry)\n", id, sig)
		fmt.Fprintf(os.Stderr, "libgen: rejoin with: libgen -worker -join %s\n", joinURL)
		os.Exit(130)
	}
	if errors.Is(err, dist.ErrSpecMismatch) {
		fatal(fmt.Errorf("%v (coordinator is running a different build configuration)", err))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "libgen: worker %s done: build drained\n", id)
}

// openJournal opens (or cold-starts) the checkpoint journal. A fresh
// (non -resume) run clears any stale segments; a -resume run replays
// them, degrading to a cold start — with the typed corruption error on
// stderr — when the journal is unreadable or belongs to a different
// configuration.
func openJournal(dir string, fp checkpoint.Fingerprint, resume bool) *checkpoint.Journal {
	fsys := checkpoint.OSFS{}
	if !resume {
		if err := checkpoint.Reset(fsys, dir); err != nil {
			fatal(fmt.Errorf("clear checkpoint dir: %w", err))
		}
	}
	j, err := checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	if errors.Is(err, checkpoint.ErrCorruptJournal) {
		fmt.Fprintf(os.Stderr, "libgen: %v — starting cold\n", err)
		if rerr := checkpoint.Reset(fsys, dir); rerr != nil {
			fatal(fmt.Errorf("clear corrupt journal: %w", rerr))
		}
		j, err = checkpoint.Open(fsys, dir, fp, checkpoint.Options{})
	}
	if err != nil {
		fatal(err)
	}
	if resume {
		st := j.Stats()
		fmt.Fprintf(os.Stderr, "libgen: journal replayed: %d resolved units, %d segments", st.Resolved, st.Segments)
		if st.TornRecords > 0 {
			fmt.Fprintf(os.Stderr, " (%d torn tail record(s) dropped)", st.TornRecords)
		}
		fmt.Fprintln(os.Stderr)
	}
	return j
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "libgen: %v\n", err)
	os.Exit(1)
}
