// Command libgen characterises the synthetic standard-cell library by
// Monte-Carlo simulation and emits a Liberty (.lib) file with classic LVF
// and, optionally, the paper's LVF² attributes.
//
// Usage:
//
//	libgen -cells INV,NAND2 -arcs 1 -samples 5000 -format lvf2 -o out.lib
//	libgen -cells all -arcs 2 -stride 4 -format lvf -o classic.lib
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/spice"
)

func main() {
	var (
		cellList = flag.String("cells", "INV,NAND2", `comma-separated cell types, or "all"`)
		arcs     = flag.Int("arcs", 1, "arcs to characterise per cell type")
		samples  = flag.Int("samples", 4000, "MC samples per distribution")
		stride   = flag.Int("stride", 1, "grid stride (1 = full 8x8)")
		format   = flag.String("format", "lvf2", "output format: lvf | lvf2")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *format != "lvf" && *format != "lvf2" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	var types []cells.CellType
	if *cellList == "all" {
		types = cells.Library()
	} else {
		for _, name := range strings.Split(*cellList, ",") {
			ct, ok := cells.CellByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown cell %q", name))
			}
			types = append(types, ct)
		}
	}

	grid := cells.DefaultGrid()
	corner := spice.TTCorner()
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{
		Name:        "lvf2_synth22",
		Voltage:     corner.VDD,
		TempC:       corner.TempC,
		ProcessName: "synthetic22-TTGlobal_LocalMC",
	}, "delay_template_8x8", grid.Slews, grid.Loads)

	charCfg := cells.CharConfig{Samples: *samples, Seed: *seed, GridStride: *stride}
	for _, ct := range types {
		pins := inputPins(ct.Inputs)
		outPin := liberty.AddCell(lib, ct.Name, pins, ct.Base.CapIn, "ZN", "")
		// Every input pin needs at least one timing arc or downstream STA
		// paths would silently truncate, so characterise max(arcs, inputs).
		arcList := ct.Arcs()
		want := *arcs
		if want < len(pins) {
			want = len(pins)
		}
		if want > 0 && len(arcList) > want {
			arcList = arcList[:want]
		}
		for _, arc := range arcList {
			timing := liberty.AddTiming(outPin, pins[arc.Index%len(pins)], "positive_unate")
			if err := emitArc(timing, charCfg, grid, arc, *format == "lvf2"); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "libgen: characterised %s (%d arcs)\n", ct.Name, len(arcList))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := liberty.WriteLibrary(w, lib); err != nil {
		fatal(err)
	}
}

// emitArc characterises one arc and appends cell_rise/rise_transition
// tables (the synthetic model is edge-symmetric, so one polarity is
// emitted per arc).
func emitArc(timing *liberty.Group, cfg cells.CharConfig, grid cells.Grid, arc cells.Arc, lvf2 bool) error {
	rows := len(grid.Slews) / cfg.GridStride
	cols := len(grid.Loads) / cfg.GridStride
	if len(grid.Slews)%cfg.GridStride != 0 {
		rows++
	}
	if len(grid.Loads)%cfg.GridStride != 0 {
		cols++
	}
	idx1 := make([]float64, 0, rows)
	idx2 := make([]float64, 0, cols)
	for i := 0; i < len(grid.Slews); i += cfg.GridStride {
		idx1 = append(idx1, grid.Slews[i])
	}
	for j := 0; j < len(grid.Loads); j += cfg.GridStride {
		idx2 = append(idx2, grid.Loads[j])
	}
	mk := func() ([][]float64, [][]core.Model) {
		nom := make([][]float64, len(idx1))
		mods := make([][]core.Model, len(idx1))
		for i := range nom {
			nom[i] = make([]float64, len(idx2))
			mods[i] = make([]core.Model, len(idx2))
		}
		return nom, mods
	}
	nomD, modD := mk()
	nomT, modT := mk()

	for _, d := range cells.CharacterizeArc(cfg, arc) {
		i := d.SlewIdx / cfg.GridStride
		j := d.LoadIdx / cfg.GridStride
		var m core.Model
		var err error
		if lvf2 {
			m, err = core.FitModel(d.Samples, fit.Options{})
		} else {
			m, err = core.FitLVFModel(d.Samples)
		}
		if err != nil {
			return fmt.Errorf("fit %s (%d,%d): %w", d.Arc.Label, i, j, err)
		}
		if d.Kind == cells.Delay {
			nomD[i][j], modD[i][j] = d.NomDelay, m
		} else {
			nomT[i][j], modT[i][j] = d.NomDelay, m
		}
	}
	liberty.TimingModelFromFits("cell_rise", idx1, idx2, nomD, modD).
		AppendTo(timing, "delay_template_8x8", lvf2)
	liberty.TimingModelFromFits("rise_transition", idx1, idx2, nomT, modT).
		AppendTo(timing, "delay_template_8x8", lvf2)
	return nil
}

func inputPins(n int) []string {
	names := []string{"A", "B", "C", "D", "E", "F"}
	if n > len(names) {
		n = len(names)
	}
	if n < 1 {
		n = 1
	}
	return names[:n]
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "libgen: %v\n", err)
	os.Exit(1)
}
