// Command libgen characterises the synthetic standard-cell library by
// Monte-Carlo simulation and emits a Liberty (.lib) file with classic LVF
// and, optionally, the paper's LVF² attributes.
//
// Fits run through the graceful-degradation ladder (LVF² → Norm² → LVF →
// Gaussian): a grid point whose requested fit fails validation is retried
// and then degraded instead of aborting the run. Every fallback is
// reported on stderr and recorded in the emitted library as an
// ocv_fallback_note_* attribute.
//
// Usage:
//
//	libgen -cells INV,NAND2 -arcs 1 -samples 5000 -format lvf2 -o out.lib
//	libgen -cells all -arcs 2 -stride 4 -format lvf -timeout 5m -o classic.lib
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"lvf2/internal/cells"
	"lvf2/internal/core"
	"lvf2/internal/fit"
	"lvf2/internal/liberty"
	"lvf2/internal/spice"
)

func main() {
	var (
		cellList = flag.String("cells", "INV,NAND2", `comma-separated cell types, or "all"`)
		arcs     = flag.Int("arcs", 1, "arcs to characterise per cell type")
		samples  = flag.Int("samples", 4000, "MC samples per distribution")
		stride   = flag.Int("stride", 1, "grid stride (1 = full 8x8)")
		format   = flag.String("format", "lvf2", "output format: lvf | lvf2")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget, e.g. 5m (0 = unlimited)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *format != "lvf" && *format != "lvf2" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var types []cells.CellType
	if *cellList == "all" {
		types = cells.Library()
	} else {
		for _, name := range strings.Split(*cellList, ",") {
			ct, ok := cells.CellByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown cell %q", name))
			}
			types = append(types, ct)
		}
	}

	grid := cells.DefaultGrid()
	corner := spice.TTCorner()
	lib := liberty.NewLibrary(liberty.LibraryHeaderOptions{
		Name:        "lvf2_synth22",
		Voltage:     corner.VDD,
		TempC:       corner.TempC,
		ProcessName: "synthetic22-TTGlobal_LocalMC",
	}, "delay_template_8x8", grid.Slews, grid.Loads)

	charCfg := cells.CharConfig{Samples: *samples, Seed: *seed, GridStride: *stride}
	fallbacks := 0
	for _, ct := range types {
		pins := inputPins(ct.Inputs)
		outPin := liberty.AddCell(lib, ct.Name, pins, ct.Base.CapIn, "ZN", "")
		// Every input pin needs at least one timing arc or downstream STA
		// paths would silently truncate, so characterise max(arcs, inputs).
		arcList := ct.Arcs()
		want := *arcs
		if want < len(pins) {
			want = len(pins)
		}
		if want > 0 && len(arcList) > want {
			arcList = arcList[:want]
		}
		for _, arc := range arcList {
			timing := liberty.AddTiming(outPin, pins[arc.Index%len(pins)], "positive_unate")
			n, err := emitArc(ctx, timing, charCfg, grid, arc, *format == "lvf2")
			if errors.Is(err, context.DeadlineExceeded) {
				fatal(fmt.Errorf("timed out after %v (raise -timeout or -stride)", *timeout))
			}
			if err != nil {
				fatal(err)
			}
			fallbacks += n
		}
		fmt.Fprintf(os.Stderr, "libgen: characterised %s (%d arcs)\n", ct.Name, len(arcList))
	}
	if fallbacks > 0 {
		fmt.Fprintf(os.Stderr, "libgen: %d fit(s) fell back to a degraded model (see ocv_fallback_note_* attributes)\n", fallbacks)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := liberty.WriteLibrary(w, lib); err != nil {
		fatal(err)
	}
}

// emitArc characterises one arc and appends cell_rise/rise_transition
// tables (the synthetic model is edge-symmetric, so one polarity is
// emitted per arc). It returns how many grid points were produced by a
// fallback rung rather than the requested model.
func emitArc(ctx context.Context, timing *liberty.Group, cfg cells.CharConfig, grid cells.Grid, arc cells.Arc, lvf2 bool) (int, error) {
	rows := len(grid.Slews) / cfg.GridStride
	cols := len(grid.Loads) / cfg.GridStride
	if len(grid.Slews)%cfg.GridStride != 0 {
		rows++
	}
	if len(grid.Loads)%cfg.GridStride != 0 {
		cols++
	}
	idx1 := make([]float64, 0, rows)
	idx2 := make([]float64, 0, cols)
	for i := 0; i < len(grid.Slews); i += cfg.GridStride {
		idx1 = append(idx1, grid.Slews[i])
	}
	for j := 0; j < len(grid.Loads); j += cfg.GridStride {
		idx2 = append(idx2, grid.Loads[j])
	}
	mk := func() ([][]float64, [][]core.Model) {
		nom := make([][]float64, len(idx1))
		mods := make([][]core.Model, len(idx1))
		for i := range nom {
			nom[i] = make([]float64, len(idx2))
			mods[i] = make([]core.Model, len(idx2))
		}
		return nom, mods
	}
	nomD, modD := mk()
	nomT, modT := mk()
	var notesD, notesT []string

	requested := fit.ModelLVF
	if lvf2 {
		requested = fit.ModelLVF2
	}
	dists, err := cells.CharacterizeArcCtx(ctx, cfg, arc)
	if err != nil {
		return 0, err
	}
	for _, d := range dists {
		i := d.SlewIdx / cfg.GridStride
		j := d.LoadIdx / cfg.GridStride
		m, rep, err := core.FitKindRobust(requested, d.Samples, fit.RobustOptions{})
		if err != nil {
			return 0, fmt.Errorf("fit %s (%d,%d): %w", d.Arc.Label, i, j, err)
		}
		if rep.Fallback || rep.Degenerate || rep.Dropped > 0 {
			note := fmt.Sprintf("%s (%d,%d): %s", d.Arc.Label, i, j, rep)
			fmt.Fprintf(os.Stderr, "libgen: fallback: %s\n", note)
			if d.Kind == cells.Delay {
				notesD = append(notesD, note)
			} else {
				notesT = append(notesT, note)
			}
		}
		if d.Kind == cells.Delay {
			nomD[i][j], modD[i][j] = d.NomDelay, m
		} else {
			nomT[i][j], modT[i][j] = d.NomDelay, m
		}
	}
	tmD := liberty.TimingModelFromFits("cell_rise", idx1, idx2, nomD, modD)
	tmD.FallbackNote = strings.Join(notesD, "; ")
	tmD.AppendTo(timing, "delay_template_8x8", lvf2)
	tmT := liberty.TimingModelFromFits("rise_transition", idx1, idx2, nomT, modT)
	tmT.FallbackNote = strings.Join(notesT, "; ")
	tmT.AppendTo(timing, "delay_template_8x8", lvf2)
	return len(notesD) + len(notesT), nil
}

func inputPins(n int) []string {
	names := []string{"A", "B", "C", "D", "E", "F"}
	if n > len(names) {
		n = len(names)
	}
	if n < 1 {
		n = 1
	}
	return names[:n]
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "libgen: %v\n", err)
	os.Exit(1)
}
