// Command ssta runs block-based statistical static timing analysis on the
// built-in benchmark circuits and prints the per-stage comparison of the
// four timing models against Monte-Carlo golden data (the paper's §4.4
// flow).
//
// Usage:
//
//	ssta -circuit adder -samples 5000
//	ssta -circuit htree -timeout 2m
//	ssta -circuit chain -stages 16 -bias 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lvf2/internal/circuits"
	"lvf2/internal/experiments"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
)

func main() {
	var (
		circuit = flag.String("circuit", "adder", "benchmark: adder | htree | chain")
		samples = flag.Int("samples", 4000, "MC samples per stage")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		nStages = flag.Int("stages", 12, "chain length (chain circuit only)")
		bias    = flag.Float64("bias", 0, "mechanism confrontation bias in σ (chain only; 0 = maximally bimodal)")
		timeout = flag.Duration("timeout", 0, "overall wall-clock budget, e.g. 2m (0 = unlimited)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: ssta [flags]\n\n"+
				"Compare the four timing models against Monte-Carlo golden data on a benchmark path.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ssta: unexpected arguments: %v\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	corner := spice.TTCorner()
	var path circuits.Path
	switch *circuit {
	case "adder":
		path = circuits.CarryAdder16(corner)
	case "htree":
		path = circuits.HTree6(corner)
	case "chain":
		path = circuits.FO4Chain(*nStages, *bias)
	default:
		fmt.Fprintf(os.Stderr, "ssta: unknown circuit %q (want adder, htree or chain)\n\n", *circuit)
		flag.Usage()
		os.Exit(2)
	}

	fo4, err := circuits.FO4Delay(corner)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit: %s  stages: %d  nominal: %.4f ns  depth: %.1f FO4 (FO4 = %.4f ns)\n\n",
		path.Name, len(path.Stages), path.TotalNominal(corner), path.TotalNominal(corner)/fo4, fo4)

	var res experiments.Fig5Result
	var rho float64
	var nStagesRun int
	err = withTimeout(*timeout, func() error {
		var err error
		res, err = experiments.Fig5(experiments.Config{Samples: *samples, Seed: *seed}, path, corner)
		if err != nil {
			return err
		}
		// Berry-Esseen commentary (Theorem 1): the bound at the path end.
		stages := path.MCStages(corner, *samples, *seed)
		for _, s := range stages {
			if r := ssta.AbsThirdStandardizedMoment(s.Samples); r > rho {
				rho = r
			}
		}
		nStagesRun = len(stages)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.RenderFig5(res))
	fmt.Printf("\nBerry-Esseen: worst stage ρ=%.3f ⇒ sup-CDF distance from Gaussian ≤ %.4f after %d stages (O(1/√n))\n",
		rho, ssta.BerryEsseenBound(rho, nStagesRun), nStagesRun)
}

// withTimeout runs f with a wall-clock budget, mirroring cmd/lvf2fit: on
// expiry the worker goroutine is abandoned (it finishes in the background;
// the process exits immediately after).
func withTimeout(budget time.Duration, f func() error) error {
	if budget <= 0 {
		return f()
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		return fmt.Errorf("%w after %v (raise -timeout)", context.DeadlineExceeded, budget)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ssta: %v\n", err)
	os.Exit(1)
}
