// Command ssta runs block-based statistical static timing analysis on the
// built-in benchmark circuits and prints the per-stage comparison of the
// four timing models against Monte-Carlo golden data (the paper's §4.4
// flow).
//
// Usage:
//
//	ssta -circuit adder -samples 5000
//	ssta -circuit htree
//	ssta -circuit chain -stages 16 -bias 0
package main

import (
	"flag"
	"fmt"
	"os"

	"lvf2/internal/circuits"
	"lvf2/internal/experiments"
	"lvf2/internal/spice"
	"lvf2/internal/ssta"
)

func main() {
	var (
		circuit = flag.String("circuit", "adder", "benchmark: adder | htree | chain")
		samples = flag.Int("samples", 4000, "MC samples per stage")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		nStages = flag.Int("stages", 12, "chain length (chain circuit only)")
		bias    = flag.Float64("bias", 0, "mechanism confrontation bias in σ (chain only; 0 = maximally bimodal)")
	)
	flag.Parse()

	corner := spice.TTCorner()
	var path circuits.Path
	switch *circuit {
	case "adder":
		path = circuits.CarryAdder16(corner)
	case "htree":
		path = circuits.HTree6(corner)
	case "chain":
		path = circuits.FO4Chain(*nStages, *bias)
	default:
		fmt.Fprintf(os.Stderr, "ssta: unknown circuit %q\n", *circuit)
		os.Exit(1)
	}

	fo4, err := circuits.FO4Delay(corner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssta: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("circuit: %s  stages: %d  nominal: %.4f ns  depth: %.1f FO4 (FO4 = %.4f ns)\n\n",
		path.Name, len(path.Stages), path.TotalNominal(corner), path.TotalNominal(corner)/fo4, fo4)

	res, err := experiments.Fig5(experiments.Config{Samples: *samples, Seed: *seed}, path, corner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssta: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderFig5(res))

	// Berry-Esseen commentary (Theorem 1): report the bound at the path end.
	stages := path.MCStages(corner, *samples, *seed)
	var rho float64
	for _, s := range stages {
		if r := ssta.AbsThirdStandardizedMoment(s.Samples); r > rho {
			rho = r
		}
	}
	n := len(stages)
	fmt.Printf("\nBerry-Esseen: worst stage ρ=%.3f ⇒ sup-CDF distance from Gaussian ≤ %.4f after %d stages (O(1/√n))\n",
		rho, ssta.BerryEsseenBound(rho, n), n)
}
