// Command lvf2d is the concurrent timing-query daemon: it loads Liberty
// libraries (LVF and LVF²) once and serves per-arc distribution, speed
// binning, yield and path-level SSTA queries over HTTP, with an LRU model
// cache, singleflight request coalescing and Prometheus metrics. See
// the README "Serving" section for the endpoint table.
//
// Usage:
//
//	lvf2d -addr :8080 -lib synth.lib
//	lvf2d -lib fast=fast.lib -lib slow=slow.lib -pprof
//	lvf2d -lib synth.lib -peer-id a -peers 'b=http://host2:8080,c=http://host3:8080'
//	curl 'localhost:8080/v1/arc/binning?lib=synth&cell=INV&slew=0.02&load=0.004'
//
// With -peer-id/-peers the daemon serves as one replica of a fleet: the
// model cache is sharded over a consistent-hash ring, non-owned queries
// forward to their owner (falling back to a local compute if the owner
// is down), and a restarting replica warm-seeds its owned keys from its
// peers. Every replica lists every other replica; the fleet membership
// is validated before the listener starts.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lvf2/internal/modelcache"
	"lvf2/internal/server"
)

func main() {
	var libs libFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently served API requests")
		fitSamples  = flag.Int("fit-samples", 2048, "quantile samples per refit query")
		cacheModels = flag.Int("cache-models", 65536, "max cached fitted models")
		cacheLibs   = flag.Int("cache-libs", 8, "max cached parsed libraries")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "cache memory budget, bytes")
		maxLibs     = flag.Int("max-libraries", 32, "max registered library sources")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		snapshot    = flag.String("snapshot", "", "model-cache snapshot file: restored on boot, saved periodically and on drain")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (with -snapshot)")
		yieldMax    = flag.Int("yield-max-samples", 1<<22, "sample budget cap per /v1/yield estimator run")
		yieldBatch  = flag.Int("yield-batch", 4096, "estimator batch size between CI-contract checks")
		peerID      = flag.String("peer-id", "", "this replica's id in the fleet (requires -peers or -membership)")
		selfURL     = flag.String("self-url", "", "this replica's own base URL as peers reach it (embedded in membership documents)")
		membership  = flag.String("membership", "", "epoch-versioned fleet membership JSON file; watched for changes and updated on adopted epochs")
		memberPoll  = flag.Duration("membership-poll", 2*time.Second, "membership file poll cadence (with -membership)")
		aeEvery     = flag.Duration("antientropy-interval", 30*time.Second, "anti-entropy digest-exchange cadence in a fleet")
		vnodes      = flag.Int("ring-vnodes", 0, "virtual nodes per replica on the consistent-hash ring (0 = default)")
	)
	var peerSpecs peerFlags
	flag.Var(&libs, "lib", "Liberty library to preload: path or name=path (repeatable)")
	flag.Var(&peerSpecs, "peers", "fleet peers as comma-separated id=url entries (repeatable, requires -peer-id)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: lvf2d [flags]\n\nServe LVF/LVF² timing queries over HTTP.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lvf2d: unexpected arguments: %s\n\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}

	// Fleet membership is validated before anything listens: a typo in
	// -peers or the membership file must be an exit-2 usage error, not a
	// replica that silently serves standalone.
	peers, err := server.ParsePeers(peerSpecs)
	var bootMembership *server.Membership
	if err == nil {
		if len(peers) > 0 || *peerID != "" {
			err = server.ValidatePeerFleet(*peerID, peers)
		}
		if err == nil && *peerID != "" && len(peers) == 0 && *membership == "" {
			err = fmt.Errorf("-peer-id %q given without -peers or -membership", *peerID)
		}
	}
	if err == nil && *membership != "" {
		switch {
		case len(peers) > 0:
			err = fmt.Errorf("-membership and -peers are mutually exclusive")
		case *peerID == "":
			err = fmt.Errorf("-membership requires -peer-id")
		default:
			var m server.Membership
			if m, err = server.LoadMembershipFile(*membership); err == nil {
				if !m.Has(*peerID) {
					err = fmt.Errorf("membership file %s does not list this replica (%q)", *membership, *peerID)
				} else {
					bootMembership = &m
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lvf2d: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Cache: modelcache.Options{
			MaxLibraries: *cacheLibs,
			MaxModels:    *cacheModels,
			MaxBytes:     *cacheBytes,
		},
		RequestTimeout:       *timeout,
		MaxInFlight:          *maxInFlight,
		FitSamples:           *fitSamples,
		MaxUploadedLibraries: *maxLibs,
		EnablePprof:          *enablePprof,
		SnapshotPath:         *snapshot,
		SnapshotInterval:     *snapEvery,
		YieldMaxSamples:      *yieldMax,
		YieldBatch:           *yieldBatch,
		Replication: server.ReplicationOptions{
			SelfID:                 *peerID,
			SelfURL:                *selfURL,
			Peers:                  peers,
			Membership:             bootMembership,
			MembershipPath:         *membership,
			MembershipPollInterval: *memberPoll,
			AntiEntropyInterval:    *aeEvery,
			VirtualNodes:           *vnodes,
		},
	})
	for _, l := range libs {
		name := l.name
		if name == "" {
			// Predictable reference for curl: -lib synth.lib → lib=synth.
			name = strings.TrimSuffix(filepath.Base(l.path), ".lib")
		}
		hash, err := srv.AddLibraryFile(name, l.path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", l.path, err))
		}
		fmt.Fprintf(os.Stderr, "lvf2d: loaded %s as %q (hash %.12s…)\n", l.path, name, hash)
	}

	// Restore the snapshot (if any) and flip /readyz to ready. A corrupt
	// or version-skewed snapshot is logged and counted but never fatal.
	srv.Bootstrap()

	// In a fleet, pull this replica's owned slice of the model cache
	// back from whichever peers absorbed it while we were down. Best
	// effort: dead peers just contribute nothing. Booting from a
	// membership document runs the full graceful-join sequence instead:
	// announce the document to the incumbents (a no-op when they already
	// have it), then warm-seed — /readyz answers "warming" throughout.
	switch {
	case bootMembership != nil:
		wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n := srv.JoinFleet(wctx)
		cancel()
		fmt.Fprintf(os.Stderr, "lvf2d: replica %q joined a %d-replica fleet at epoch %d, warm-seeded %d models\n",
			*peerID, len(bootMembership.Members), bootMembership.Epoch, n)
	case len(peers) > 0:
		wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		n := srv.WarmSeedFromPeers(wctx)
		cancel()
		fmt.Fprintf(os.Stderr, "lvf2d: replica %q in a %d-replica fleet, warm-seeded %d models\n",
			*peerID, len(peers)+1, n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "lvf2d: serving on %s (%d libraries)\n", *addr, len(libs))
	if err := srv.Run(ctx, *addr, *drain); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "lvf2d: drained, bye")
}

// libFlags collects repeated -lib values of the form path or name=path.
type libFlags []struct{ name, path string }

func (l *libFlags) String() string {
	parts := make([]string, len(*l))
	for i, e := range *l {
		parts[i] = e.path
	}
	return strings.Join(parts, ",")
}

func (l *libFlags) Set(v string) error {
	name, path := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if path == "" {
		return fmt.Errorf("empty library path")
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

// peerFlags collects repeated -peers values; each value is itself a
// comma-separated list of id=url entries, so one flag or many both work.
type peerFlags []string

func (p *peerFlags) String() string { return strings.Join(*p, ",") }

func (p *peerFlags) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		return fmt.Errorf("empty -peers value")
	}
	*p = append(*p, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lvf2d: %v\n", err)
	os.Exit(1)
}
