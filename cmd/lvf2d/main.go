// Command lvf2d is the concurrent timing-query daemon: it loads Liberty
// libraries (LVF and LVF²) once and serves per-arc distribution, speed
// binning, yield and path-level SSTA queries over HTTP, with an LRU model
// cache, singleflight request coalescing and Prometheus metrics. See
// the README "Serving" section for the endpoint table.
//
// Usage:
//
//	lvf2d -addr :8080 -lib synth.lib
//	lvf2d -lib fast=fast.lib -lib slow=slow.lib -pprof
//	curl 'localhost:8080/v1/arc/binning?lib=synth&cell=INV&slew=0.02&load=0.004'
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lvf2/internal/modelcache"
	"lvf2/internal/server"
)

func main() {
	var libs libFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently served API requests")
		fitSamples  = flag.Int("fit-samples", 2048, "quantile samples per refit query")
		cacheModels = flag.Int("cache-models", 65536, "max cached fitted models")
		cacheLibs   = flag.Int("cache-libs", 8, "max cached parsed libraries")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "cache memory budget, bytes")
		maxLibs     = flag.Int("max-libraries", 32, "max registered library sources")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		snapshot    = flag.String("snapshot", "", "model-cache snapshot file: restored on boot, saved periodically and on drain")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (with -snapshot)")
		yieldMax    = flag.Int("yield-max-samples", 1<<22, "sample budget cap per /v1/yield estimator run")
		yieldBatch  = flag.Int("yield-batch", 4096, "estimator batch size between CI-contract checks")
	)
	flag.Var(&libs, "lib", "Liberty library to preload: path or name=path (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: lvf2d [flags]\n\nServe LVF/LVF² timing queries over HTTP.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lvf2d: unexpected arguments: %s\n\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Cache: modelcache.Options{
			MaxLibraries: *cacheLibs,
			MaxModels:    *cacheModels,
			MaxBytes:     *cacheBytes,
		},
		RequestTimeout:       *timeout,
		MaxInFlight:          *maxInFlight,
		FitSamples:           *fitSamples,
		MaxUploadedLibraries: *maxLibs,
		EnablePprof:          *enablePprof,
		SnapshotPath:         *snapshot,
		SnapshotInterval:     *snapEvery,
		YieldMaxSamples:      *yieldMax,
		YieldBatch:           *yieldBatch,
	})
	for _, l := range libs {
		name := l.name
		if name == "" {
			// Predictable reference for curl: -lib synth.lib → lib=synth.
			name = strings.TrimSuffix(filepath.Base(l.path), ".lib")
		}
		hash, err := srv.AddLibraryFile(name, l.path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", l.path, err))
		}
		fmt.Fprintf(os.Stderr, "lvf2d: loaded %s as %q (hash %.12s…)\n", l.path, name, hash)
	}

	// Restore the snapshot (if any) and flip /readyz to ready. A corrupt
	// or version-skewed snapshot is logged and counted but never fatal.
	srv.Bootstrap()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "lvf2d: serving on %s (%d libraries)\n", *addr, len(libs))
	if err := srv.Run(ctx, *addr, *drain); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "lvf2d: drained, bye")
}

// libFlags collects repeated -lib values of the form path or name=path.
type libFlags []struct{ name, path string }

func (l *libFlags) String() string {
	parts := make([]string, len(*l))
	for i, e := range *l {
		parts[i] = e.path
	}
	return strings.Join(parts, ",")
}

func (l *libFlags) Set(v string) error {
	name, path := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if path == "" {
		return fmt.Errorf("empty library path")
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lvf2d: %v\n", err)
	os.Exit(1)
}
