// Command benchjson converts `go test -bench` output into a JSON
// benchmark report. With no arguments it reads one stream from stdin,
// echoing every input line to stdout unchanged (so it can sit at the end
// of a pipe without hiding the run); with file arguments it merges the
// saved streams instead:
//
//	go test -bench . -benchmem -count 3 -run '^$' . | go run ./cmd/benchjson -out BENCH_fit.json
//	go run ./cmd/benchjson -out BENCH_all.json fit.txt charlib.txt
//
// A stream may span several packages (`go test -bench . ./...`): each
// `pkg:` header starts a new section and the results that follow are
// tagged with that package, so nothing is lost when streams are merged.
// Repeated -count runs of the same benchmark are kept as separate
// entries; consumers aggregate as they see fit.
//
// Report files follow the BENCH_<area>.json naming convention — one
// area per file so regenerating one never clobbers another:
//
//	BENCH_fit.json      fit-layer micro benchmarks (make bench)
//	BENCH_server.json   lvf2d serving latency (make bench-server)
//	BENCH_charwork.json distributed build scaling (make bench-charwork)
//	BENCH_charlib.json  library characterisation throughput, warm vs
//	                    cold cells/sec (make bench-charlib)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`   // pkg: header of the stream section
	Procs       int     `json:"procs,omitempty"` // GOMAXPROCS suffix (-cpu), 1 if absent
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`  // -benchmem
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"` // -benchmem
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`    // b.SetBytes

	// Custom metrics reported via b.ReportMetric (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "path of the JSON report to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	var rep Report
	if args := flag.Args(); len(args) > 0 {
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			err = parseStream(f, &rep, false)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: reading %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	} else if err := parseStream(os.Stdin, &rep, true); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

// parseStream folds one `go test -bench` stream into the report,
// optionally echoing each line to stdout. Header lines (goos/goarch/cpu)
// fill the report-level fields — last writer wins, which only matters
// when merging streams from different machines — while each pkg: header
// tags the results that follow it.
func parseStream(r io.Reader, rep *Report, echo bool) error {
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBenchLine(line); ok {
				res.Pkg = pkg
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return sc.Err()
}

// parseBenchLine parses one `BenchmarkName-P  N  V unit  V unit ...` line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
