// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report. It echoes every input line to stdout unchanged (so it
// can sit at the end of a pipe without hiding the run) and writes the
// parsed results to the -out file:
//
//	go test -bench . -benchmem -count 3 -run '^$' . | go run ./cmd/benchjson -out BENCH_fit.json
//
// Repeated -count runs of the same benchmark are kept as separate entries;
// consumers aggregate as they see fit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"` // GOMAXPROCS suffix (-cpu), 1 if absent
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`  // -benchmem
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"` // -benchmem
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`    // b.SetBytes

	// Custom metrics reported via b.ReportMetric (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "path of the JSON report to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

// parseBenchLine parses one `BenchmarkName-P  N  V unit  V unit ...` line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
