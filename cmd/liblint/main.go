// Command liblint checks a Liberty (.lib) file for the structural and
// statistical problems that silently corrupt SSTA: mismatched table
// shapes, weights outside [0,1], negative sigmas, out-of-range skewness,
// missing directions/arcs, and dangling template references.
//
// Usage:
//
//	liblint file.lib [file2.lib ...]
//
// Exit status: 0 clean, 1 errors found, 2 usage/parse failure.
package main

import (
	"fmt"
	"os"

	"lvf2/internal/liberty"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: liblint file.lib [...]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range os.Args[1:] {
		g, err := liberty.ParseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "liblint: %s: %v\n", path, err)
			exit = 2
			continue
		}
		issues := liberty.Lint(g)
		for _, is := range issues {
			fmt.Printf("%s: %s\n", path, is)
		}
		if liberty.HasErrors(issues) && exit == 0 {
			exit = 1
		}
		if len(issues) == 0 {
			fmt.Printf("%s: clean\n", path)
		}
	}
	os.Exit(exit)
}
