package main

import (
	"strings"
	"testing"

	"lvf2/internal/fit"
)

func TestReadSamples(t *testing.T) {
	in := `# comment
1.5
2.5, 3.5
 4.5	5.5

# trailing comment
6.5`
	xs, err := readSamples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5}
	if len(xs) != len(want) {
		t.Fatalf("got %v", xs)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("xs[%d] = %v want %v", i, xs[i], want[i])
		}
	}
}

func TestReadSamplesBadValue(t *testing.T) {
	if _, err := readSamples(strings.NewReader("1.0\nbanana\n")); err == nil {
		t.Error("bad value accepted")
	}
}

func TestSelectModels(t *testing.T) {
	all, err := selectModels("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v %v", all, err)
	}
	one, err := selectModels("LVF2")
	if err != nil || len(one) != 1 || one[0] != fit.ModelLVF2 {
		t.Fatalf("lvf2: %v %v", one, err)
	}
	for _, name := range []string{"lvf", "norm2", "lesn"} {
		if _, err := selectModels(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := selectModels("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}
