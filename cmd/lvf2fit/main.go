// Command lvf2fit fits the four statistical timing models (LVF², Norm²,
// LESN, LVF) to a sample file — one floating-point value per line — and
// reports parameters, fit quality and the paper's evaluation metrics.
//
// Fits run through the graceful-degradation ladder: a model whose fit
// fails validation is retried from perturbed starts and then degraded
// (LVF² → Norm² → LVF → Gaussian); the fallback provenance is printed
// with the metrics. -timeout bounds the wall-clock budget of each fit.
//
// Usage:
//
//	lvf2fit -in delays.txt
//	lvf2fit -in delays.txt -model lvf2 -polish -timeout 30s
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"lvf2/internal/binning"
	"lvf2/internal/fit"
	"lvf2/internal/stats"
)

func main() {
	var (
		in      = flag.String("in", "", "input sample file (default stdin)")
		model   = flag.String("model", "all", "model to fit: lvf|norm2|lesn|lvf2|all")
		polish  = flag.Bool("polish", false, "enable MLE polish for LVF2")
		autok   = flag.Int("autok", 0, "select component count 1..k by BIC and report it")
		timeout = flag.Duration("timeout", 0, "wall-clock budget per fit, e.g. 30s (0 = unlimited)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	xs, err := readSamples(r)
	if err != nil {
		fatal(err)
	}
	if len(xs) == 0 {
		fatal(fmt.Errorf("no samples"))
	}

	emp := stats.NewEmpirical(xs)
	sm := emp.Moments()
	fmt.Printf("samples: %d  mean: %.6g  std: %.6g  skew: %.4f  kurt: %.4f\n\n",
		sm.N, sm.Mean, sm.Std(), sm.Skewness, sm.Kurtosis)

	models, err := selectModels(*model)
	if err != nil {
		fatal(err)
	}
	opts := fit.Options{Polish: *polish}

	if *autok > 0 {
		res, err := fit.FitAutoK(xs, *autok, fit.BIC, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("BIC component selection (1..%d): k = %d  scores %v\n\n", *autok, res.K, res.Scores)
	}

	var baseline *binning.Metrics
	if br, err := fit.Fit(fit.ModelLVF, xs, opts); err == nil {
		m := binning.Evaluate(br.Dist, emp)
		baseline = &m
	}

	for _, mk := range models {
		res, rep, err := fitOne(mk, xs, opts, *timeout)
		if err != nil {
			fmt.Printf("%-6s fit failed: %v\n", mk, err)
			continue
		}
		met := binning.Evaluate(res.Dist, emp)
		gof := stats.ChiSquareGOF(res.Dist, xs, 40, fitParamCount(mk))
		ksp := stats.KSPValue(emp.KSDistance(res.Dist), len(xs))
		fmt.Printf("%-6s loglik %.2f  binErr %.5f  3σ-yieldErr %.5f  cdfRMSE %.5f  χ²p %.3g  KSp %.3g",
			mk, res.LogLik, met.BinErr, met.YieldErr, met.CDFRMSE, gof.PValue, ksp)
		if baseline != nil && mk != fit.ModelLVF {
			fmt.Printf("  (vs LVF: %.2fx bin, %.2fx yield)",
				binning.Cap(binning.ErrorReduction(baseline.BinErr, met.BinErr), 999),
				binning.Cap(binning.ErrorReduction(baseline.YieldErr, met.YieldErr), 999))
		}
		fmt.Println()
		if rep.Fallback || rep.Degenerate || rep.Dropped > 0 {
			fmt.Printf("        fallback: %s\n", rep)
		}
		printParams(rep.Used, xs, opts)
	}
}

// fitOne runs one model through the robust degradation ladder, bounded by
// the per-fit wall-clock budget (0 = unlimited). A fit that overruns the
// budget is reported as context.DeadlineExceeded; its goroutine finishes
// in the background and is discarded.
func fitOne(mk fit.Model, xs []float64, opts fit.Options, budget time.Duration) (fit.Result, fit.FitReport, error) {
	ro := fit.RobustOptions{Options: opts}
	if budget <= 0 {
		return fit.FitRobust(mk, xs, ro)
	}
	type outcome struct {
		res fit.Result
		rep fit.FitReport
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, rep, err := fit.FitRobust(mk, xs, ro)
		ch <- outcome{res, rep, err}
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.rep, o.err
	case <-timer.C:
		return fit.Result{}, fit.FitReport{Requested: mk, Used: mk},
			fmt.Errorf("%w after %v", context.DeadlineExceeded, budget)
	}
}

func printParams(mk fit.Model, xs []float64, opts fit.Options) {
	switch mk {
	case fit.ModelLVF2:
		r, err := fit.FitLVF2(xs, opts)
		if err != nil {
			return
		}
		m1, s1, g1 := r.C1.Moments()
		m2, s2, g2 := r.C2.Moments()
		fmt.Printf("        λ=%.4f  θ1=(μ %.6g, σ %.6g, γ %.4f)  θ2=(μ %.6g, σ %.6g, γ %.4f)\n",
			r.Lambda, m1, s1, g1, m2, s2, g2)
	case fit.ModelNorm2:
		r, err := fit.FitNorm2Params(xs, opts)
		if err != nil {
			return
		}
		fmt.Printf("        λ=%.4f  N1=(μ %.6g, σ %.6g)  N2=(μ %.6g, σ %.6g)\n",
			r.Lambda, r.C1.Mu, r.C1.Sigma, r.C2.Mu, r.C2.Sigma)
	case fit.ModelLVF:
		r, err := fit.FitLVF(xs)
		if err != nil {
			return
		}
		sn := r.Dist.(stats.SkewNormal)
		m, s, g := sn.Moments()
		fmt.Printf("        θ=(μ %.6g, σ %.6g, γ %.4f)  [ξ %.6g, ω %.6g, α %.4f]\n",
			m, s, g, sn.Xi, sn.Omega, sn.Alpha)
	case fit.ModelLESN:
		r, err := fit.FitLESN(xs, opts)
		if err != nil {
			return
		}
		l := r.Dist.(stats.LogESN)
		fmt.Printf("        log-space ESN: ξ %.6g, ω %.6g, α %.4f, τ %.4f\n",
			l.W.Xi, l.W.Omega, l.W.Alpha, l.W.Tau)
	}
}

// fitParamCount is the dof penalty per model for the chi-square test.
func fitParamCount(m fit.Model) int {
	switch m {
	case fit.ModelLVF:
		return 3
	case fit.ModelNorm2:
		return 5
	case fit.ModelLESN:
		return 4
	case fit.ModelLVF2:
		return 7
	case fit.ModelLN:
		return 2
	case fit.ModelLSN:
		return 3
	}
	return 3
}

func selectModels(s string) ([]fit.Model, error) {
	switch strings.ToLower(s) {
	case "all":
		return fit.AllModels, nil
	case "lvf":
		return []fit.Model{fit.ModelLVF}, nil
	case "norm2":
		return []fit.Model{fit.ModelNorm2}, nil
	case "lesn":
		return []fit.Model{fit.ModelLESN}, nil
	case "lvf2":
		return []fit.Model{fit.ModelLVF2}, nil
	}
	return nil, fmt.Errorf("unknown model %q", s)
}

func readSamples(r io.Reader) ([]float64, error) {
	var xs []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, fld := range strings.Fields(strings.ReplaceAll(line, ",", " ")) {
			v, err := strconv.ParseFloat(fld, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q: %w", fld, err)
			}
			xs = append(xs, v)
		}
	}
	return xs, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lvf2fit: %v\n", err)
	os.Exit(1)
}
